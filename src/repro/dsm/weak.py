"""Weakly-consistent DSM: trading freshness for coherence traffic.

"Current research is therefore considering weaker forms of consistency to
lessen this overhead [Hutto90]" — this module is that trade, executable.

:class:`WeakCoherence` departs from the strong protocol in one way: a write
does **not** invalidate outstanding read copies.  Readers keep a private
snapshot of each page and re-fetch only when it is older than the
``staleness_bound``; writers still transfer ownership through the manager
(single writer), but pay no invalidation fan-out.

Consequences, both measured by experiment E15:

* message count under write-sharing collapses (no invalidations, no
  re-fetch storms);
* reads may return values up to ``staleness_bound`` old — the protocol
  counts every read whose snapshot disagrees with ground truth.

Synchronisation points are explicit: :meth:`WeakCoherence.sync` drops a
context's snapshots, forcing fresh fetches (the release-consistency
``acquire`` in spirit).
"""

from __future__ import annotations

from ..kernel.context import Context
from .coherence import CoherenceProtocol
from .pages import Mode

#: Default staleness bound in virtual seconds.
DEFAULT_STALENESS = 0.05


class WeakCoherence(CoherenceProtocol):
    """Single-writer DSM with bounded-staleness read snapshots."""

    def __init__(self, region, staleness_bound: float = DEFAULT_STALENESS):
        super().__init__(region)
        self.staleness_bound = staleness_bound
        #: (context_id, page) -> (snapshot dict, fetched_at)
        self._snapshots: dict[tuple[str, int], tuple[dict, float]] = {}
        self.stats.update(stale_reads=0, snapshot_refreshes=0, syncs=0)

    # -- reads ------------------------------------------------------------------

    def read_slot(self, context: Context, page: int, offset: int):
        snapshot = self._fresh_snapshot(context, page)
        value = snapshot.get(offset)
        truth = self.region.contents[page].get(offset)
        if value != truth:
            self.stats["stale_reads"] += 1
        return value

    def _fresh_snapshot(self, context: Context, page: int) -> dict:
        state = self.region.directory[page]
        if state.owner == context.context_id:
            # The owner holds the write copy: its view IS ground truth.
            self.region.cache_of(context).stats["read_hits"] += 1
            return self.region.contents[page]
        key = (context.context_id, page)
        cached = self._snapshots.get(key)
        now = context.clock.now
        if cached is not None:
            snapshot, fetched_at = cached
            if now - fetched_at <= self.staleness_bound:
                self.region.cache_of(context).stats["read_hits"] += 1
                return snapshot
        # (Re-)fetch the page from its current owner; no directory update
        # is needed for readers — they are invisible to the protocol.
        self.stats["snapshot_refreshes"] += 1
        cache = self.region.cache_of(context)
        cache.stats["read_faults"] += 1
        costs = self.system.costs
        state = self.region.directory[page]
        context.charge(costs.page_fault_overhead)
        at = self._control(context.context_id, state.owner,
                           context.clock.now, "dsm-weak-read")
        owner_node = state.owner.split("/", 1)[0]
        at += self.system.network.transit_time(owner_node, context.node.name,
                                               costs.page_size)
        self.system.trace.emit(at, "send", state.owner, context.context_id,
                               "dsm-page", costs.page_size)
        self.stats["page_transfers"] += 1
        context.clock.advance_to(at)
        snapshot = dict(self.region.contents[page])
        self._snapshots[(context.context_id, page)] = (snapshot,
                                                       context.clock.now)
        cache.grant(page, Mode.READ)
        return snapshot

    # -- writes ------------------------------------------------------------------

    def write_slot(self, context: Context, page: int, offset: int,
                   value) -> None:
        self.write_access(context, page)
        self.region.contents[page][offset] = value
        # The writer's own snapshot (if any) tracks its writes.
        key = (context.context_id, page)
        cached = self._snapshots.get(key)
        if cached is not None:
            cached[0][offset] = value

    def _write_fault(self, context: Context, cache, page: int) -> None:
        """Ownership transfer without invalidation fan-out."""
        costs = self.system.costs
        state = self.region.directory[page]
        manager = self.region.manager
        context.charge(costs.page_fault_overhead)
        at = self._control(context.context_id, manager.context_id,
                           context.clock.now, "dsm-weak-write-req")
        at = self._manager_handle(at)
        old_owner = state.owner
        if old_owner != context.context_id:
            old_node = old_owner.split("/", 1)[0]
            at += self.system.network.transit_time(old_node,
                                                   context.node.name,
                                                   costs.page_size)
            self.system.trace.emit(at, "send", old_owner, context.context_id,
                                   "dsm-page", costs.page_size)
            self.stats["page_transfers"] += 1
            old_cache = self.region.caches.get(old_owner)
            if old_cache is not None:
                old_cache.downgrade(page)
        state.owner = context.context_id
        state.version += 1
        cache.grant(page, Mode.WRITE)
        context.clock.advance_to(at)

    # -- synchronisation -----------------------------------------------------------

    def sync(self, context: Context) -> int:
        """Drop every snapshot of ``context``: its next reads are fresh.

        Returns the number of snapshots dropped.  This is the explicit
        synchronisation point weak models expose; a client that needs a
        fresh view calls it before reading.
        """
        victims = [key for key in self._snapshots
                   if key[0] == context.context_id]
        for key in victims:
            del self._snapshots[key]
        self.stats["syncs"] += 1
        return len(victims)
