"""Distributed shared memory: pages and per-context caches.

This package implements the paper's third invocation technique —
"map the object into the local address space" — as a comparator for
proxies (experiments E1 and E4).  It is a deliberately classic design
(Li & Hudak-style single-writer / multiple-reader with invalidation),
not an attempt at a modern DSM.

A :class:`SharedRegion` is a flat array of pages with one *manager*
context that tracks, per page, the owner and the copy set.  Each
participating context holds a :class:`PageCache` mapping page numbers to
access modes.  The coherence protocol lives in
:mod:`repro.dsm.coherence`; the object layer in :mod:`repro.dsm.heap`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..kernel.context import Context
from ..kernel.errors import ConfigurationError


class Mode(Enum):
    """Access mode of a cached page copy."""

    NONE = 0
    READ = 1
    WRITE = 2


@dataclass
class PageState:
    """Manager-side record for one page.

    Attributes:
        owner: context id of the current owner (has the latest contents).
        copies: context ids holding read copies (owner not included).
        version: bumped on every ownership transfer (diagnostics).
    """

    owner: str
    copies: set[str] = field(default_factory=set)
    version: int = 0


class PageCache:
    """One context's view of a shared region."""

    def __init__(self, context: Context):
        self.context = context
        self.modes: dict[int, Mode] = {}
        self.stats = {"read_hits": 0, "write_hits": 0, "read_faults": 0,
                      "write_faults": 0, "invalidations": 0, "downgrades": 0}

    def mode(self, page: int) -> Mode:
        """Current access mode for ``page`` (NONE when not cached)."""
        return self.modes.get(page, Mode.NONE)

    def grant(self, page: int, mode: Mode) -> None:
        """Record a granted copy."""
        self.modes[page] = mode

    def invalidate(self, page: int) -> None:
        """Drop the copy entirely (another context wants to write)."""
        if self.modes.pop(page, None) is not None:
            self.stats["invalidations"] += 1

    def downgrade(self, page: int) -> None:
        """Demote a write copy to read (another context wants to read)."""
        if self.modes.get(page) == Mode.WRITE:
            self.modes[page] = Mode.READ
            self.stats["downgrades"] += 1


class SharedRegion:
    """A DSM segment: page contents plus manager-side directory.

    Page *contents* are held centrally (keyed by page number) purely as the
    simulation's ground truth; the protocol still pays every transfer, and
    a context may only touch a slot when its cache holds the page in a
    sufficient mode — enforced by the coherence layer.
    """

    def __init__(self, name: str, manager: Context, num_pages: int,
                 slots_per_page: int = 64):
        if num_pages <= 0:
            raise ConfigurationError("region needs at least one page")
        self.name = name
        self.manager = manager
        self.num_pages = num_pages
        self.slots_per_page = slots_per_page
        self.directory: dict[int, PageState] = {
            page: PageState(owner=manager.context_id)
            for page in range(num_pages)
        }
        self.contents: dict[int, dict[int, object]] = {
            page: {} for page in range(num_pages)
        }
        self.caches: dict[str, PageCache] = {}
        self.attach(manager)
        # The manager starts owning every page with a write copy.
        home_cache = self.caches[manager.context_id]
        for page in range(num_pages):
            home_cache.grant(page, Mode.WRITE)

    def attach(self, context: Context) -> PageCache:
        """Join a context to the region (idempotent)."""
        cache = self.caches.get(context.context_id)
        if cache is None:
            cache = PageCache(context)
            self.caches[context.context_id] = cache
        return cache

    def cache_of(self, context: Context) -> PageCache:
        """The page cache of an attached context."""
        cache = self.caches.get(context.context_id)
        if cache is None:
            raise ConfigurationError(
                f"context {context.context_id!r} is not attached to region "
                f"{self.name!r}")
        return cache

    def address(self, linear_slot: int) -> tuple[int, int]:
        """Split a linear slot index into ``(page, slot)``."""
        return divmod(linear_slot, self.slots_per_page)[0] % self.num_pages, \
            linear_slot % self.slots_per_page

    def __repr__(self) -> str:
        return (f"SharedRegion({self.name!r}, pages={self.num_pages}, "
                f"members={len(self.caches)})")
