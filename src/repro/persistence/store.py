"""The stable store: simulated disk that survives crashes.

A :class:`StableStore` belongs to a node.  Node crashes lose everything in
contexts (volatile memory); the store's contents persist by definition —
that asymmetry is the whole reason persistence managers exist.

Accesses charge realistic 1986 disk costs (20 ms latency, ~1 MB/s) to the
accessing context's virtual clock, and values are round-tripped through the
wire format so (a) only marshallable state can be made persistent and (b)
the byte size charged is honest.
"""

from __future__ import annotations

from typing import Any

from ..kernel.context import Context
from ..kernel.errors import ConfigurationError
from ..wire.marshal import PLAIN


class StableStore:
    """Crash-surviving key/value storage attached to one node."""

    def __init__(self, node):
        self.node = node
        self._blocks: dict[str, bytes] = {}
        self.stats = {"writes": 0, "reads": 0, "bytes_written": 0,
                      "bytes_read": 0}

    def write(self, context: Context, key: str, value: Any) -> int:
        """Persist ``value`` under ``key``; returns the bytes written.

        Charged to ``context`` (which must live on this node — a remote
        context reaches a store through a service, never directly).
        """
        self._check_local(context)
        data = PLAIN.encode(value)
        costs = context.system.costs
        context.charge(costs.disk_latency + len(data) * costs.disk_byte_cost)
        self._blocks[key] = data
        self.stats["writes"] += 1
        self.stats["bytes_written"] += len(data)
        context.system.trace.emit(context.clock.now, "disk",
                                  context.context_id, self.node.name,
                                  f"write:{key}", len(data))
        return len(data)

    def read(self, context: Context, key: str) -> Any:
        """Load the value under ``key``; raises ``KeyError`` when absent."""
        self._check_local(context)
        try:
            data = self._blocks[key]
        except KeyError:
            raise KeyError(f"stable store has no block {key!r}") from None
        costs = context.system.costs
        context.charge(costs.disk_latency + len(data) * costs.disk_byte_cost)
        self.stats["reads"] += 1
        self.stats["bytes_read"] += len(data)
        return PLAIN.decode(data)

    def delete(self, context: Context, key: str) -> bool:
        """Drop a block; returns whether it existed."""
        self._check_local(context)
        context.charge(context.system.costs.disk_latency)
        return self._blocks.pop(key, None) is not None

    def keys(self, prefix: str = "") -> list[str]:
        """Stored keys with the given prefix, sorted (no cost: directory
        scans are noise next to the block transfers)."""
        return sorted(key for key in self._blocks if key.startswith(prefix))

    def __contains__(self, key: str) -> bool:
        return key in self._blocks

    def _check_local(self, context: Context) -> None:
        if context.node is not self.node:
            raise ConfigurationError(
                f"context {context.context_id!r} cannot access the stable "
                f"store of node {self.node.name!r} directly; go through a "
                "service")


def stable_store(node) -> StableStore:
    """The node's stable store, created on first use."""
    store = getattr(node, "_stable_store", None)
    if store is None:
        store = StableStore(node)
        node._stable_store = store
    return store
