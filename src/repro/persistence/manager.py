"""Persistence managers: checkpointing exports and recovering after crashes.

The model follows the paper's era (whole-object checkpoints, not logs):

* :meth:`PersistenceManager.checkpoint` snapshots one export — class name,
  export metadata, and the object's ``migrate_state()`` (persistence reuses
  the migration protocol: both need a marshallable state capsule);
* :class:`CheckpointHook` rides the dispatcher's mutation hooks to
  checkpoint automatically every N mutations;
* :func:`crash_node` crashes a node *and wipes its contexts' volatile
  exports* — the honest failure model that makes persistence matter;
* :meth:`PersistenceManager.recover` re-instantiates every checkpointed
  object from the stable store under its original oid, so outstanding
  remote references (and the name service's registrations) become valid
  again; changes made after the last checkpoint are lost, exactly as they
  would be.
"""

from __future__ import annotations

from ..core.export import ObjectSpace, get_space
from ..kernel.errors import ConfigurationError
from ..kernel.node import Node
from ..wire.refs import ObjectRef
from .store import StableStore, stable_store

#: Stable-store key prefix for export snapshots.
_SNAPSHOT_PREFIX = "export:"


class PersistenceManager:
    """Checkpoint/recover machinery for one context's object space."""

    def __init__(self, space: ObjectSpace, store: StableStore | None = None):
        self.space = space
        self.store = store or stable_store(space.context.node)
        self.stats = {"checkpoints": 0, "recovered": 0, "lost": 0}

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self, ref_or_obj) -> int:
        """Snapshot one export to the stable store; returns bytes written."""
        entry = self.space._entry_for(ref_or_obj)
        snapshot_method = getattr(entry.obj, "migrate_state", None)
        if snapshot_method is None:
            raise ConfigurationError(
                f"{type(entry.obj).__name__!r} has no migrate_state(); "
                "only state-capsule objects can be made persistent")
        self.space.system.codebase.register_class(type(entry.obj))
        capsule = {
            "class": type(entry.obj).__name__,
            "interface": entry.interface.name,
            "policy": entry.policy_name,
            "config": entry.policy_config,
            "epoch": entry.ref.epoch,
            "state": snapshot_method(),
        }
        self.stats["checkpoints"] += 1
        return self.store.write(self.space.context,
                                _SNAPSHOT_PREFIX + entry.ref.oid, capsule)

    def checkpoint_all(self) -> int:
        """Snapshot every checkpointable, non-wellknown export; returns the
        number of objects written."""
        written = 0
        for oid, entry in list(self.space.context.exports.items()):
            if oid.startswith("_") or entry.revoked or entry.moved_to is not None:
                continue
            if getattr(entry.obj, "migrate_state", None) is None:
                continue
            self.checkpoint(entry.ref)
            written += 1
        return written

    def auto_checkpoint(self, ref_or_obj, every: int = 8) -> "CheckpointHook":
        """Checkpoint automatically after every ``every`` mutations."""
        entry = self.space._entry_for(ref_or_obj)
        hook = CheckpointHook(self, entry.ref, every)
        entry.mutation_hooks.append(hook)
        self.checkpoint(entry.ref)   # baseline snapshot
        return hook

    # -- recovery -----------------------------------------------------------------

    def recover(self) -> int:
        """Re-export every snapshot found in the stable store.

        Idempotent per object: an oid that is already live is skipped.
        Returns the number of objects brought back.
        """
        recovered = 0
        codebase = self.space.system.codebase
        for key in self.store.keys(_SNAPSHOT_PREFIX):
            oid = key[len(_SNAPSHOT_PREFIX):]
            live = self.space.context.exports.get(oid)
            if live is not None and not live.revoked:
                continue
            capsule = self.store.read(self.space.context, key)
            cls = codebase.resolve_class(capsule["class"])
            obj = cls.from_migration_state(capsule["state"])
            if live is not None:
                del self.space.context.exports[oid]  # replace revoked husk
            self.space.export(obj,
                              interface=codebase.interface(capsule["interface"]),
                              policy=capsule["policy"],
                              config=dict(capsule["config"] or {}),
                              oid=oid, epoch=capsule["epoch"])
            recovered += 1
        self.stats["recovered"] += recovered
        return recovered


class CheckpointHook:
    """Dispatcher mutation hook: checkpoint every N mutating operations."""

    def __init__(self, manager: PersistenceManager, ref: ObjectRef,
                 every: int):
        self.manager = manager
        self.ref = ref
        self.every = max(1, int(every))
        self._since = 0

    def after(self, verb: str, args: tuple, kwargs: dict) -> None:
        """Called by the dispatcher after each successful mutation."""
        self._since += 1
        if self._since >= self.every:
            self._since = 0
            self.manager.checkpoint(self.ref)


def crash_node(node: Node) -> int:
    """Crash ``node`` with *volatile* semantics: every export in every one
    of its contexts is lost (revoked); only stable-store contents survive.

    Returns the number of exports wiped.  Restart the node and run
    :meth:`PersistenceManager.recover` to bring checkpointed objects back.
    """
    node.crash()
    wiped = 0
    for ctx in node.contexts.values():
        for oid, entry in ctx.exports.items():
            if entry.revoked:
                continue
            entry.revoked = True
            wiped += 1
        ctx.proxies.clear()   # the context's own bindings die with it
    return wiped


def recover_context(context, store: StableStore | None = None) -> int:
    """Convenience: restart-side recovery of one context.

    Re-establishes the context's well-known system services (context
    manager, mover, lease service — all stateless, re-created at boot in a
    real system) and replays every application snapshot from the store.

    Note what is *not* recovered: services without a ``migrate_state``
    capsule, and the name service's registration table (real systems
    persist it through their own storage; here, re-register after
    recovery or deploy the registry as a persistent service).
    """
    space = get_space(context)
    for oid, entry in context.exports.items():
        if oid.startswith("_") and entry.revoked:
            entry.revoked = False
    manager = PersistenceManager(space, store)
    return manager.recover()
