"""Persistence: stable stores, checkpointing, crash-with-loss, recovery."""

from .manager import (
    CheckpointHook,
    PersistenceManager,
    crash_node,
    recover_context,
)
from .store import StableStore, stable_store

__all__ = [
    "CheckpointHook", "PersistenceManager", "StableStore", "crash_node",
    "recover_context", "stable_store",
]
