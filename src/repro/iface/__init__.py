"""Interface system: abstract data type signatures and structural conformance."""

from .conformance import (
    check_conforms,
    check_implements,
    conformance_gaps,
    conforms,
    implementation_interface,
    operation_compatible,
)
from .interface import Interface, Operation, is_operation, operation

__all__ = [
    "Interface", "Operation", "check_conforms", "check_implements",
    "conformance_gaps", "conforms", "implementation_interface",
    "is_operation", "operation", "operation_compatible",
]
