"""Interface adapters: synthesising conforming classes at run time.

:func:`make_delegate` builds (and caches) a class that structurally
implements a given interface by forwarding every operation to a target
object.  Generated methods carry real signatures (via ``__signature__``) and
the proper ``@operation`` metadata, so a delegate passes the same
conformance checks as a hand-written implementation.

Used by the replication helper (the group coordinator delegates to the
primary replica) and available to applications for wrappers/decorators that
must remain exportable.
"""

from __future__ import annotations

import inspect
import weakref
from typing import Any

from .interface import Interface, Operation, operation

_PARAM = inspect.Parameter
# Keyed by the interface *object* (weakly): two interfaces that happen to
# share a name must not share a delegate class.
_delegate_cache: "weakref.WeakKeyDictionary[Interface, type]" = \
    weakref.WeakKeyDictionary()


def _make_forwarder(op: Operation):
    """A function that forwards ``op`` to ``self._delegate_target``."""
    verb = op.name

    def forwarder(self, *args, **kwargs):
        return getattr(self._delegate_target, verb)(*args, **kwargs)

    forwarder.__name__ = verb
    forwarder.__qualname__ = verb
    forwarder.__doc__ = f"Forward {verb!r} to the delegate target."
    parameters = [_PARAM("self", _PARAM.POSITIONAL_OR_KEYWORD)]
    parameters += [_PARAM(name, _PARAM.POSITIONAL_OR_KEYWORD)
                   for name in op.params]
    forwarder.__signature__ = inspect.Signature(parameters)
    return operation(readonly=op.readonly, idempotent=op.idempotent,
                     oneway=op.oneway, invalidates=op.invalidates,
                     compute=op.compute)(forwarder)


def delegate_class(interface: Interface) -> type:
    """The (cached) delegate class for ``interface``."""
    cached = _delegate_cache.get(interface)
    if cached is not None:
        return cached

    def __init__(self, target: Any):
        self._delegate_target = target

    namespace: dict[str, Any] = {
        "__init__": __init__,
        "__doc__": f"Auto-generated delegate implementing {interface.name!r}.",
        "_delegate_interface": interface,
    }
    for op in interface.operations.values():
        namespace[op.name] = _make_forwarder(op)
    cls = type(f"{interface.name}Delegate", (), namespace)
    cls.__repro_interface__ = interface
    _delegate_cache[interface] = cls
    return cls


def make_delegate(target: Any, interface: Interface):
    """An object conforming to ``interface`` that forwards to ``target``."""
    return delegate_class(interface)(target)
