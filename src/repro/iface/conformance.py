"""Structural conformance (subtyping) between interfaces.

Following the abstract-data-type school the paper belongs to: interface
``A`` *conforms to* ``B`` iff ``A`` provides at least the operations of
``B``, with compatible parameter lists.  Conformance is a relation between
interfaces, not classes — no inheritance link is required.

The export machinery uses :func:`check_implements` at export time so that a
service which claims an interface actually honours it, turning would-be
run-time dispatch errors into export-time errors (the paper's community
cared about this: run-time type errors clash with distribution transparency).
"""

from __future__ import annotations

from ..kernel.errors import ConformanceError
from .interface import Interface, Operation, is_operation, _positional_params


def operation_compatible(provided: Operation, required: Operation) -> bool:
    """Whether ``provided`` can stand in for ``required``.

    Parameter lists must agree in length (names are documentation); a
    provided operation may not be *less* capable: if the requirement is
    declared readonly the provider must be readonly too (a client holding a
    readonly view must not observe mutation).
    """
    if provided.name != required.name:
        return False
    if len(provided.params) != len(required.params):
        return False
    if required.readonly and not provided.readonly:
        return False
    return True


def conforms(candidate: Interface, requirement: Interface) -> bool:
    """Whether ``candidate`` conforms to (is a subtype of) ``requirement``."""
    return not conformance_gaps(candidate, requirement)


def conformance_gaps(candidate: Interface, requirement: Interface) -> list[str]:
    """Human-readable reasons why ``candidate`` fails to conform (empty = ok)."""
    gaps = []
    for name, required in requirement.operations.items():
        provided = candidate.operations.get(name)
        if provided is None:
            gaps.append(f"missing operation {name!r}")
        elif not operation_compatible(provided, required):
            gaps.append(
                f"operation {name!r} incompatible: provided "
                f"params={provided.params} readonly={provided.readonly}, "
                f"required params={required.params} readonly={required.readonly}")
    return gaps


def check_conforms(candidate: Interface, requirement: Interface) -> None:
    """Raise :class:`ConformanceError` unless ``candidate`` conforms."""
    gaps = conformance_gaps(candidate, requirement)
    if gaps:
        raise ConformanceError(
            f"{candidate.name!r} does not conform to {requirement.name!r}: "
            + "; ".join(gaps))


def implementation_interface(obj: object) -> Interface:
    """The interface an object actually implements (its ``@operation`` methods)."""
    return Interface.of(type(obj))


def check_implements(obj: object, declared: Interface) -> None:
    """Raise unless ``obj`` structurally implements ``declared``.

    Checks method presence and arity directly on the instance, so it also
    catches objects whose class carries the decorator but whose instance
    shadows the method with a non-callable.
    """
    gaps = []
    for name, required in declared.operations.items():
        member = getattr(obj, name, None)
        if member is None or not callable(member):
            gaps.append(f"missing method {name!r}")
            continue
        if not is_operation(getattr(type(obj), name, member)):
            gaps.append(f"method {name!r} exists but is not marked @operation")
            continue
        params = _positional_params(member)
        if len(params) != len(required.params):
            gaps.append(
                f"method {name!r} takes {len(params)} parameters, "
                f"interface declares {len(required.params)}")
    if gaps:
        raise ConformanceError(
            f"{type(obj).__name__!r} does not implement {declared.name!r}: "
            + "; ".join(gaps))
