"""Interfaces: abstract data type signatures.

The paper's object model (and the distributed OO literature around it —
Emerald, ANSA) is built on *abstract data types*: an object's external
behaviour is its set of operations.  Proxies export an interface, and the
service behind them implements (at least) that interface — structural
*conformance*, not class inheritance, is the relation that matters
(:mod:`repro.iface.conformance`).

Operation metadata matters to smart proxies:

* ``readonly`` — the operation does not mutate the object; caching proxies
  may answer it from a cache and replicating proxies from any replica.
* ``idempotent`` — safe to retransmit without at-most-once dedup.
* ``oneway`` — no reply expected; fire-and-forget.
* ``invalidates`` — keys of cached entries this operation invalidates
  (``"*"`` means all); used by the caching policy's write handling.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

from ..kernel.errors import InterfaceError

_OPERATION_ATTR = "_repro_operation"


@dataclass(frozen=True)
class Operation:
    """One operation in an interface signature.

    Attributes:
        name: operation name (the verb used on the wire).
        params: positional parameter names, excluding ``self``.
        readonly: see module docstring.
        idempotent: see module docstring.
        oneway: see module docstring.
        invalidates: see module docstring.
        compute: virtual CPU seconds one execution costs on the server
            (drives the cost model; 0 means "negligible").
    """

    name: str
    params: tuple[str, ...] = ()
    readonly: bool = False
    idempotent: bool = False
    oneway: bool = False
    invalidates: tuple[str, ...] = ()
    compute: float = 0.0


class Interface:
    """A named set of operations — an abstract data type signature."""

    def __init__(self, name: str, operations: list[Operation]):
        self.name = name
        self.operations: dict[str, Operation] = {}
        for op in operations:
            if op.name in self.operations:
                raise InterfaceError(f"duplicate operation {op.name!r} in {name!r}")
            self.operations[op.name] = op

    def operation(self, verb: str) -> Operation:
        """Look up an operation; raises :class:`InterfaceError` if absent."""
        try:
            return self.operations[verb]
        except KeyError:
            raise InterfaceError(
                f"interface {self.name!r} has no operation {verb!r}; "
                f"it declares {sorted(self.operations)}") from None

    def __contains__(self, verb: str) -> bool:
        return verb in self.operations

    def names(self) -> list[str]:
        """All operation names, sorted."""
        return sorted(self.operations)

    def __repr__(self) -> str:
        return f"Interface({self.name!r}, ops={self.names()})"

    # -- derivation from decorated classes -----------------------------------

    @classmethod
    def of(cls, klass: type) -> "Interface":
        """Derive the interface from a class with ``@operation`` methods.

        The result is cached on the class (``__repro_interface__``).
        """
        cached = klass.__dict__.get("__repro_interface__")
        if cached is not None:
            return cached
        ops = []
        for name in dir(klass):
            member = getattr(klass, name, None)
            meta = getattr(member, _OPERATION_ATTR, None)
            if meta is None:
                continue
            params = _positional_params(member)
            ops.append(Operation(name=name, params=params, **meta))
        if not ops:
            raise InterfaceError(
                f"class {klass.__name__!r} declares no @operation methods")
        iface = cls(klass.__name__, ops)
        setattr(klass, "__repro_interface__", iface)
        return iface


def operation(func: Callable | None = None, *, readonly: bool = False,
              idempotent: bool = False, oneway: bool = False,
              invalidates: tuple[str, ...] = (), compute: float = 0.0):
    """Mark a method as part of its class's exported interface.

    Usable bare (``@operation``) or with keyword arguments
    (``@operation(readonly=True)``).
    """
    meta = {"readonly": readonly, "idempotent": idempotent or readonly,
            "oneway": oneway, "invalidates": tuple(invalidates),
            "compute": compute}

    def mark(fn: Callable) -> Callable:
        setattr(fn, _OPERATION_ATTR, meta)
        return fn

    if func is not None:
        return mark(func)
    return mark


def is_operation(member) -> bool:
    """Whether a class member was marked with :func:`operation`."""
    return getattr(member, _OPERATION_ATTR, None) is not None


def _positional_params(func: Callable) -> tuple[str, ...]:
    """Positional parameter names of a method, excluding ``self``."""
    try:
        sig = inspect.signature(func)
    except (TypeError, ValueError):
        return ()
    names = []
    for param in sig.parameters.values():
        if param.name == "self":
            continue
        if param.kind in (inspect.Parameter.POSITIONAL_ONLY,
                          inspect.Parameter.POSITIONAL_OR_KEYWORD):
            names.append(param.name)
    return tuple(names)
