#!/usr/bin/env python3
"""A build-farm monitor: event channels, failure detection, lossy networks.

Build agents publish status events to a channel; dashboards on other nodes
subscribe to topic patterns.  The network turns lossy mid-run — pushed
events go missing, the dashboards detect the gaps and pull the replay log.
Meanwhile a failure detector watches the agents and notices one dying.

Run with::

    python examples/pubsub_build_monitor.py
"""

import repro
from repro.core.export import get_space
from repro.events import EventChannel, EventSubscriber
from repro.failures.detector import FailureDetector
from repro.failures.injectors import message_loss
from repro.kernel.errors import RpcTimeout


def main() -> None:
    system = repro.make_system(seed=31)
    hub = system.add_node("hub").create_context("svc")
    agents = [system.add_node(f"agent{i}").create_context("ci")
              for i in range(3)]
    dashboard = system.add_node("dashboard").create_context("ui")
    wall = system.add_node("wallboard").create_context("ui")
    repro.install_name_service(hub)
    repro.register(hub, "events", EventChannel())

    # Dashboards subscribe by pattern; the wallboard only cares about fails.
    all_events = EventSubscriber(dashboard, repro.bind(dashboard, "events"),
                                 ["builds/*"])
    failures_only = EventSubscriber(wall, repro.bind(wall, "events"),
                                    ["builds/failed"])

    publishers = [repro.bind(ctx, "events") for ctx in agents]
    print("== agents publish build results (healthy network) ==")
    for round_no in range(3):
        for index, publisher in enumerate(publishers):
            topic = "builds/failed" if (round_no + index) % 4 == 0 \
                else "builds/passed"
            publisher.publish(topic, f"agent{index} round {round_no}")
    print(f"  dashboard saw {len(all_events.events)} events, "
          f"wallboard saw {len(failures_only.events)} failures")

    print("== the network degrades to 40% loss ==")
    with message_loss(system, 0.4):
        for round_no in range(3, 8):
            for index, publisher in enumerate(publishers):
                try:
                    publisher.publish("builds/passed",
                                      f"agent{index} round {round_no}")
                except RpcTimeout:
                    pass
    published = publishers[0].last_seq()
    print(f"  channel logged {published} events; dashboard has "
          f"{len(all_events.events)} (pushes were lost)")
    recovered = all_events.catch_up()
    print(f"  dashboard pulled {recovered} missed events from the replay "
          f"log -> {len(all_events.events)} total, gaps: {all_events.gaps()}")

    print("== agent1 dies; the failure detector notices ==")
    for ctx in agents:
        get_space(ctx)
    detector = FailureDetector(hub, suspicion_threshold=2)
    for ctx in agents:
        detector.watch(ctx.context_id)
    agents[1].node.crash()
    detector.probe()
    detector.probe()
    print(f"  alive: {detector.alive()}")
    print(f"  suspected: {detector.suspected()}")

    repro.assert_principle(system)
    print("principle audit: clean")


if __name__ == "__main__":
    main()
