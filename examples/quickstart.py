#!/usr/bin/env python3
"""Quickstart: build a two-node system, export a service, bind a proxy.

Run with::

    python examples/quickstart.py
"""

import repro


class Greeter(repro.Service):
    """A minimal service: one readonly operation."""

    @repro.operation(readonly=True)
    def greet(self, whom: str) -> str:
        """Return a greeting."""
        return f"hello, {whom}"


def main() -> None:
    # 1. A simulated distributed system: two machines, one context each.
    system = repro.make_system(seed=42)
    server = system.add_node("server").create_context("main")
    client = system.add_node("client").create_context("main")

    # 2. The name service is itself an exported service; its well-known
    #    reference is the only a-priori knowledge in the system.
    repro.install_name_service(server)

    # 3. Export + register the service.  The *service class* decides what
    #    proxy its clients get (Greeter inherits the default: a plain stub).
    repro.register(server, "greeter", Greeter())

    # 4. The client binds by name and receives a local representative — a
    #    proxy.  It never sees an address, a socket, or a message.
    greeter = repro.bind(client, "greeter")
    print(f"bound: {greeter!r}")

    # 5. Invoke.  The proxy marshals, transmits, retries if needed, and
    #    returns the result — in 6.9 simulated milliseconds.
    answer = greeter.greet("world")
    print(f"greeter.greet('world') -> {answer!r}")
    print(f"virtual time spent: {client.now * 1e3:.3f} ms")
    print(f"messages on the wire: {system.trace.count('send')}")

    # 6. The proxy principle held throughout — machine-checkable.
    repro.assert_principle(system)
    print("principle audit: clean")


if __name__ == "__main__":
    main()
