#!/usr/bin/env python3
"""The encapsulation claim, live: change the protocol, change no client.

One client function.  Five deployments of the same KVStore, each shipping a
different proxy policy.  The client's observable results are identical in
every deployment; the number of network messages is wildly different.  The
distribution protocol is a private property of the service — the paper's
central thesis.

Run with::

    python examples/encapsulation_demo.py
"""

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.metrics.counters import MessageWindow


def client_workload(store) -> list:
    """The ONE client.  It knows only the KVStore interface.

    Note what is absent: no policy names, no cache management, no replica
    lists, no migration hints.  Just puts and gets.
    """
    observed = []
    for day in range(5):
        store.put("schedule", f"day-{day} plan")
        for _ in range(6):
            observed.append(store.get("schedule"))
        store.put(f"log-{day}", f"entry {day}")
    observed.append(sorted(
        store.get(f"log-{day}") for day in range(5)))
    return observed


def deploy(policy: str):
    system = repro.make_system(seed=5)
    server = system.add_node("server").create_context("svc")
    client = system.add_node("client").create_context("apps")
    extra = system.add_node("extra").create_context("svc")
    repro.install_name_service(server)
    if policy == "replicated":
        ref = repro.replicate([server, extra], KVStore, write_quorum=2)
        repro.register(server, "kv", ref)
    else:
        store = KVStore()
        get_space(server).export(store, policy=policy)
        repro.register(server, "kv", store)
    return system, repro.bind(client, "kv")


def main() -> None:
    print(f"{'policy':<12} {'messages':>8} {'bytes':>8} {'time (ms)':>10}   result")
    baseline = None
    for policy in ("stub", "caching", "batching", "migrating", "replicated"):
        system, proxy = deploy(policy)
        t0 = proxy.proxy_context.now
        with MessageWindow(system) as window:
            result = client_workload(proxy)
        elapsed = (proxy.proxy_context.now - t0) * 1e3
        if baseline is None:
            baseline = result
        same = "identical" if result == baseline else "DIFFERENT!"
        print(f"{policy:<12} {window.report.messages:>8} "
              f"{window.report.bytes:>8} {elapsed:>10.2f}   {same}")
        assert result == baseline, "encapsulation violated!"
        repro.assert_principle(system)
    print("\nSame client, same answers — five different wire protocols.")


if __name__ == "__main__":
    main()
