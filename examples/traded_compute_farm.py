#!/usr/bin/env python3
"""A compute farm assembled at run time: trader + work queue + promises.

Three provider nodes advertise KV "shard" services with live load figures in
a trader.  A coordinator imports the least-loaded shard for each batch of
records, submits work through a batching queue, and uses promises to overlap
the verification reads at the end.  Every moving part is the public API —
no subsystem knows about any other except through proxies.

Run with::

    python examples/traded_compute_farm.py
"""

import repro
from repro.apps.kv import KVStore
from repro.apps.queue import WorkQueue
from repro.core.export import get_space
from repro.naming.trading import TraderService


def main() -> None:
    system = repro.make_system(seed=13)
    hub = system.add_node("hub").create_context("svc")
    providers = [system.add_node(f"p{i}").create_context("svc")
                 for i in range(3)]
    coordinator = system.add_node("coord").create_context("apps")
    repro.install_name_service(hub)

    # -- providers advertise shards in the trader -----------------------------
    trader = TraderService()
    repro.register(hub, "trader", trader)
    shards, offer_ids = [], []
    for index, ctx in enumerate(providers):
        shard = KVStore()
        shards.append(shard)
        get_space(ctx).export(shard)
        provider_view = repro.bind(ctx, "trader")
        offer_ids.append(provider_view.export_offer(
            "shard", {"load": 0, "zone": f"zone-{index}"}, shard))
    repro.register(hub, "work", WorkQueue())
    print(f"trader holds {trader.offer_count('shard')} shard offers")

    # -- the coordinator spreads batches by live load --------------------------
    coord_trader = repro.bind(coordinator, "trader")
    queue = repro.bind(coordinator, "work")
    for batch in range(9):
        shard = coord_trader.select("shard", {}, prefer=("min", "load"))
        shard.put(f"batch-{batch}", f"results of batch {batch}")
        queue.submit(f"post-process batch-{batch}")
        # The provider reports its new load; the trader redirects the next one.
        busiest = batch % 3
        coord_trader.update_properties(offer_ids[busiest],
                                       {"load": batch + 1})
    queue.depth()   # flush the batching proxy
    spread = [len(shard.data) for shard in shards]
    print(f"batches per shard: {spread} (trader balanced by load)")
    print(f"queued follow-ups: {queue.depth()}")

    # -- promises overlap the verification reads -------------------------------
    shard0 = coord_trader.query("shard", {"zone": "zone-0"})[0]
    keys = sorted(shards[0].data)
    t0 = coordinator.now
    for key in keys:
        shard0.get(key)
    sequential = coordinator.now - t0
    t0 = coordinator.now
    promises = [repro.call_async(shard0, "get", key) for key in keys]
    values = repro.gather(promises)
    pipelined = coordinator.now - t0
    print(f"verification: {len(values)} reads sequential "
          f"{sequential * 1e3:.2f} ms vs pipelined {pipelined * 1e3:.2f} ms")

    repro.assert_principle(system)
    print("principle audit: clean")


if __name__ == "__main__":
    main()
