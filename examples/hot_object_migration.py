#!/usr/bin/env python3
"""A proxy that migrates its object to the client hammering it.

"Proxies can make use of local information and decide to migrate the remote
object it represents from its remote context to the local one."

A build coordinator allocates ticket numbers.  The night shift runs on one
workstation and draws thousands of tickets; the migrating proxy notices and
pulls the counter onto that workstation — after which every draw is a local
call.  When the morning shift takes over on another machine, the object
follows *it* instead.

Run with::

    python examples/hot_object_migration.py
"""

import repro
from repro.apps.counter import MigratingCounter


def burst(label: str, proxy, count: int) -> None:
    ctx = proxy.proxy_context
    t0 = ctx.now
    last = 0
    for _ in range(count):
        last = proxy.incr()
    elapsed = (ctx.now - t0) * 1e3
    where = proxy.proxy_ref.context_id
    local = "local" if proxy.proxy_is_local else "remote"
    print(f"  {label}: {count} tickets (last #{last}) in {elapsed:8.3f} ms "
          f"— object now at {where} ({local})")


def main() -> None:
    system = repro.make_system(seed=3)
    coordinator = system.add_node("coordinator").create_context("svc")
    night = system.add_node("night-shift").create_context("apps")
    morning = system.add_node("morning-shift").create_context("apps")
    repro.install_name_service(coordinator)

    # MigratingCounter ships the "migrating" proxy (threshold: 4 calls).
    repro.register(coordinator, "tickets", MigratingCounter())

    print("== night shift draws tickets ==")
    night_proxy = repro.bind(night, "tickets")
    burst("warm-up  ", night_proxy, 3)     # still remote: below threshold
    burst("burst    ", night_proxy, 100)   # migrates, then goes local

    print("== morning shift takes over ==")
    morning_proxy = repro.bind(morning, "tickets")
    burst("warm-up  ", morning_proxy, 3)   # remote again (object at night's)
    burst("burst    ", morning_proxy, 100)  # the object follows the heat

    print("== numbering stayed globally consistent ==")
    print(f"  night's view: next would be #{night_proxy.incr()}")
    stats = morning_proxy.proxy_stats
    print(f"  morning proxy: migrations={stats['migrations']} "
          f"rebinds={stats['rebinds']}")

    repro.assert_principle(system)
    print("principle audit: clean")


if __name__ == "__main__":
    main()
