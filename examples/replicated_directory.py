#!/usr/bin/env python3
"""A replicated company directory that survives machine crashes.

The service is deployed as three replicas; the proxy it ships routes reads
to the nearest live replica and writes to all of them.  Clients notice
nothing when a replica host dies — the availability claim of the proxy
principle's "bind to a replica" intelligence.

Run with::

    python examples/replicated_directory.py
"""

import repro
from repro.apps.kv import KVStore
from repro.kernel.errors import DistributionError


def main() -> None:
    system = repro.make_system(seed=11)
    sites = [system.add_node(name).create_context("svc")
             for name in ("hq", "lab", "warehouse")]
    laptop = system.add_node("laptop").create_context("apps")
    repro.install_name_service(sites[0])

    # Deploy three replicas; a majority quorum tolerates one crash.
    group_ref = repro.replicate(sites, KVStore, write_quorum=2)
    repro.register(sites[0], "directory", group_ref)

    directory = repro.bind(laptop, "directory")
    print(f"bound: {type(directory).__name__}")

    print("== normal operation ==")
    directory.put("alice", "hq, room 101")
    directory.put("bob", "lab, bench 7")
    print(f"  alice -> {directory.get('alice')!r}")

    print("== the HQ machine crashes ==")
    system.node("hq").crash()
    print(f"  alice -> {directory.get('alice')!r}  (served by a replica)")
    directory.put("carol", "warehouse, dock 3")
    print("  write succeeded with 2/3 replicas (quorum)")

    print("== a second crash takes us below quorum ==")
    system.node("lab").crash()
    print(f"  alice -> {directory.get('alice')!r}  (reads still fine)")
    try:
        directory.put("dave", "nowhere")
    except DistributionError as exc:
        print(f"  write correctly refused: {exc}")

    print("== recovery ==")
    system.node("hq").restart()
    system.node("lab").restart()
    directory.put("dave", "hq, room 202")
    print(f"  dave -> {directory.get('dave')!r}")

    stats = directory.proxy_stats
    print(f"proxy stats: reads={stats['reads']} writes={stats['writes']} "
          f"failovers={stats['read_failovers']} "
          f"write_failures={stats['write_failures']}")
    repro.assert_principle(system)
    print("principle audit: clean")


if __name__ == "__main__":
    main()
