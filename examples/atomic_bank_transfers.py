#!/usr/bin/env python3
"""Atomic transfers between banks on different machines, behind proxies.

Two branches hold versioned account stores on separate nodes; a coordinator
on a third validates and applies optimistic transactions.  Tellers race on
the same accounts: conflicts abort and retry, totals never drift.

Run with::

    python examples/atomic_bank_transfers.py
"""

import repro
from repro.transactions import (
    Transaction,
    TransactionCoordinator,
    VersionedKVStore,
    run_transaction,
)


def main() -> None:
    system = repro.make_system(seed=21)
    head_office = system.add_node("head-office").create_context("svc")
    north = system.add_node("north-branch").create_context("svc")
    south = system.add_node("south-branch").create_context("svc")
    tellers = [system.add_node(f"teller{i}").create_context("apps")
               for i in range(3)]
    repro.install_name_service(head_office)
    repro.register(head_office, "txn", TransactionCoordinator())
    north_accounts = VersionedKVStore()
    south_accounts = VersionedKVStore()
    repro.register(north, "accounts/north", north_accounts)
    repro.register(south, "accounts/south", south_accounts)

    # Seed balances through a transaction of their own.
    coord0 = repro.bind(tellers[0], "txn")
    north0 = repro.bind(tellers[0], "accounts/north")
    south0 = repro.bind(tellers[0], "accounts/south")
    seed = Transaction(coord0)
    for name in ("ada", "bob", "cid"):
        seed.write(north0, name, 1000)
        seed.write(south0, name, 1000)
    assert seed.commit()
    print("seeded 6 accounts across two branches (1000 each)")

    # Three tellers race: each moves money ada->bob across branches.
    total_attempts = 0
    for round_no in range(8):
        for index, teller_ctx in enumerate(tellers):
            coord = repro.bind(teller_ctx, "txn")
            north_kv = repro.bind(teller_ctx, "accounts/north")
            south_kv = repro.bind(teller_ctx, "accounts/south")

            def transfer(txn, amount=10 * (index + 1)):
                from_balance = txn.read(north_kv, "ada")
                to_balance = txn.read(south_kv, "bob")
                txn.write(north_kv, "ada", from_balance - amount)
                txn.write(south_kv, "bob", to_balance + amount)

            __, attempts = run_transaction(coord, transfer)
            total_attempts += attempts

    moved = 8 * (10 + 20 + 30)
    ada = north_accounts.snapshot()["ada"]
    bob = south_accounts.snapshot()["bob"]
    print(f"after 24 racing cross-branch transfers "
          f"({total_attempts} attempts incl. retries):")
    print(f"  ada (north): {ada}   bob (south): {bob}")
    assert ada == 1000 - moved
    assert bob == 1000 + moved
    print(f"  conservation holds: {ada} + {bob} == 2000")

    repro.assert_principle(system)
    print("principle audit: clean")


if __name__ == "__main__":
    main()
