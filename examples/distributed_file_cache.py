#!/usr/bin/env python3
"""The paper's motivating example: a file service with caching proxies.

"A proxy for a remote file object may cache recently accessed data to speed
up access."  Three workstations read a shared configuration tree; one of
them occasionally writes.  The file service ships a caching proxy with
server-driven invalidation — watch the read latency collapse and the
correctness survive the writes.

Run with::

    python examples/distributed_file_cache.py
"""

import repro
from repro.apps.files import FileService
from repro.metrics.counters import MessageWindow
from repro.metrics.latency import LatencyRecorder


def main() -> None:
    system = repro.make_system(seed=7)
    fileserver = system.add_node("fileserver").create_context("svc")
    stations = [system.add_node(f"ws{i}").create_context("apps")
                for i in range(3)]
    repro.install_name_service(fileserver)

    # FileService declares default_policy = "caching": every client of this
    # service gets a coherent cache without writing a line of cache code.
    repro.register(fileserver, "files", FileService())

    mounts = [repro.bind(ws, "files") for ws in stations]
    mounts[0].write_file("/etc/motd", b"welcome to the SOMIW cluster\n")
    mounts[0].write_file("/etc/hosts", b"fileserver ws0 ws1 ws2\n")

    print("== cold reads (one round trip each) ==")
    cold = LatencyRecorder("cold")
    for ws, mount in zip(stations, mounts):
        t0 = ws.now
        mount.read_file("/etc/motd")
        cold.record(ws.now - t0)
    print(f"  mean: {cold.summary().mean * 1e3:.3f} ms")

    print("== warm reads (served from the proxy's cache) ==")
    warm = LatencyRecorder("warm")
    with MessageWindow(system) as window:
        for _ in range(20):
            for ws, mount in zip(stations, mounts):
                t0 = ws.now
                mount.read_file("/etc/motd")
                warm.record(ws.now - t0)
    print(f"  mean: {warm.summary().mean * 1e6:.1f} µs "
          f"({cold.summary().mean / warm.summary().mean:.0f}x faster)")
    print(f"  messages for 60 reads: {window.report.messages}")

    print("== a write invalidates every cache, coherently ==")
    mounts[2].write_file("/etc/motd", b"maintenance window at 18:00\n")
    for ws, mount in zip(stations, mounts):
        content = mount.read_file("/etc/motd")
        assert content == b"maintenance window at 18:00\n"
    print("  all three stations observe the new contents")

    for mount in mounts:
        stats = mount.proxy_stats
        print(f"  {mount.proxy_context.context_id}: "
              f"hits={stats['hits']} misses={stats['misses']} "
              f"invalidations={stats['invalidations']}")

    repro.assert_principle(system)
    print("principle audit: clean")


if __name__ == "__main__":
    main()
