"""Tests for the persistence substrate: stores, checkpoints, recovery."""

import pytest

import repro
from repro.apps.counter import Counter
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.kernel.errors import ConfigurationError, DanglingReference
from repro.persistence import (
    PersistenceManager,
    crash_node,
    recover_context,
    stable_store,
)


class TestStableStore:
    def test_write_read_roundtrip(self, pair):
        system, server, client = pair
        store = stable_store(server.node)
        store.write(server, "blob", {"a": [1, 2], "b": "text"})
        assert store.read(server, "blob") == {"a": [1, 2], "b": "text"}

    def test_missing_key_raises(self, pair):
        system, server, client = pair
        store = stable_store(server.node)
        with pytest.raises(KeyError):
            store.read(server, "ghost")

    def test_disk_costs_charged(self, pair):
        system, server, client = pair
        store = stable_store(server.node)
        before = server.now
        store.write(server, "k", "x" * 10_000)
        elapsed = server.now - before
        assert elapsed >= system.costs.disk_latency

    def test_survives_crash(self, pair):
        system, server, client = pair
        store = stable_store(server.node)
        store.write(server, "k", 42)
        server.node.crash()
        server.node.restart()
        assert store.read(server, "k") == 42

    def test_remote_context_rejected(self, pair):
        system, server, client = pair
        store = stable_store(server.node)
        with pytest.raises(ConfigurationError):
            store.write(client, "k", 1)

    def test_one_store_per_node(self, pair):
        system, server, client = pair
        assert stable_store(server.node) is stable_store(server.node)

    def test_keys_and_delete(self, pair):
        system, server, client = pair
        store = stable_store(server.node)
        store.write(server, "export:a", 1)
        store.write(server, "export:b", 2)
        store.write(server, "other", 3)
        assert store.keys("export:") == ["export:a", "export:b"]
        assert store.delete(server, "export:a") is True
        assert "export:a" not in store


class TestCrashSemantics:
    def test_crash_node_wipes_exports(self, pair):
        system, server, client = pair
        store = KVStore()
        repro.register(server, "kv", store)
        proxy = repro.bind(client, "kv")
        crash_node(server.node)
        server.node.restart()
        with pytest.raises(DanglingReference):
            proxy.get("k")

    def test_plain_crash_keeps_state(self, pair):
        """Node.crash() without the persistence module stays non-volatile
        (the original simulation default, used by most experiments)."""
        system, server, client = pair
        store = KVStore()
        repro.register(server, "kv", store)
        proxy = repro.bind(client, "kv")
        proxy.put("k", 1)
        server.node.crash()
        server.node.restart()
        assert proxy.get("k") == 1


class TestCheckpointRecover:
    @pytest.fixture
    def persisted(self, pair):
        system, server, client = pair
        store = KVStore()
        repro.register(server, "kv", store)
        manager = PersistenceManager(get_space(server))
        proxy = repro.bind(client, "kv")
        return system, server, client, store, manager, proxy

    def test_manual_checkpoint_recover(self, persisted):
        system, server, client, store, manager, proxy = persisted
        proxy.put("k", "saved")
        manager.checkpoint(store)
        crash_node(server.node)
        server.node.restart()
        assert recover_context(server) == 1
        assert proxy.get("k") == "saved"

    def test_changes_after_checkpoint_are_lost(self, persisted):
        system, server, client, store, manager, proxy = persisted
        proxy.put("k", "saved")
        manager.checkpoint(store)
        proxy.put("k", "lost")
        crash_node(server.node)
        server.node.restart()
        recover_context(server)
        assert proxy.get("k") == "saved"

    def test_auto_checkpoint_interval(self, persisted):
        system, server, client, store, manager, proxy = persisted
        manager.auto_checkpoint(store, every=4)
        for index in range(6):
            proxy.put(f"k{index}", index)
        crash_node(server.node)
        server.node.restart()
        recover_context(server)
        assert proxy.get("k3") == 3      # inside the 4-mutation checkpoint
        assert proxy.get("k5") is None   # after the last checkpoint

    def test_recovered_object_keeps_identity(self, persisted):
        """The old reference (and even the old proxy) stays valid."""
        system, server, client, store, manager, proxy = persisted
        old_ref = proxy.proxy_ref
        proxy.put("k", 1)
        manager.checkpoint(store)
        crash_node(server.node)
        server.node.restart()
        recover_context(server)
        assert proxy.proxy_ref == old_ref
        assert proxy.put("k2", 2) is True

    def test_recovery_is_idempotent(self, persisted):
        system, server, client, store, manager, proxy = persisted
        manager.checkpoint(store)
        crash_node(server.node)
        server.node.restart()
        assert recover_context(server) == 1
        assert recover_context(server) == 0

    def test_checkpoint_all(self, pair):
        system, server, client = pair
        space = get_space(server)
        stores = [KVStore() for _ in range(3)]
        for index, kv in enumerate(stores):
            kv.put("id", index)
            space.export(kv)
        manager = PersistenceManager(space)
        assert manager.checkpoint_all() == 3

    def test_uncheckpointable_object_rejected(self, pair):
        system, server, client = pair

        class Opaque:
            @repro.operation
            def touch(self):
                return 1

        space = get_space(server)
        ref = space.export(Opaque())
        manager = PersistenceManager(space)
        with pytest.raises(ConfigurationError):
            manager.checkpoint(ref)

    def test_stats(self, persisted):
        system, server, client, store, manager, proxy = persisted
        manager.checkpoint(store)
        manager.checkpoint(store)
        assert manager.stats["checkpoints"] == 2


class TestRecoveryInteractions:
    def test_counter_state_capsule(self, pair):
        system, server, client = pair
        counter = Counter()
        repro.register(server, "ctr", counter)
        manager = PersistenceManager(get_space(server))
        proxy = repro.bind(client, "ctr")
        for _ in range(5):
            proxy.incr()
        manager.checkpoint(counter)
        crash_node(server.node)
        server.node.restart()
        recover_context(server)
        assert proxy.incr() == 6

    def test_wellknown_services_resurrect(self, pair):
        system, server, client = pair
        store = KVStore()
        repro.register(server, "kv", store)
        manager = PersistenceManager(get_space(server))
        manager.checkpoint(store)
        crash_node(server.node)
        server.node.restart()
        recover_context(server)
        # The context manager answers again: a fresh handshake bind works.
        mgr = get_space(client).ctxmgr_proxy(server.context_id)
        assert mgr.ping() == "pong"
