"""Tests for asynchronous promises and pipelining."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.failures.injectors import message_loss
from repro.kernel.errors import RpcTimeout, SimulationError
from repro.rpc.promises import call_async, gather, pipeline_calls


@pytest.fixture
def kv(pair):
    system, server, client = pair
    store = KVStore()
    repro.register(server, "kv", store)
    proxy = repro.bind(client, "kv")
    for key in "abcd":
        proxy.put(key, key.upper())
    return system, server, client, store, proxy


class TestPromise:
    def test_wait_returns_value(self, kv):
        system, server, client, store, proxy = kv
        promise = call_async(proxy, "get", "a")
        assert promise.wait() == "A"

    def test_wait_is_idempotent(self, kv):
        system, server, client, store, proxy = kv
        promise = call_async(proxy, "get", "a")
        assert promise.wait() == promise.wait()

    def test_issue_does_not_block(self, kv):
        system, server, client, store, proxy = kv
        before = client.now
        promise = call_async(proxy, "get", "a")
        issued = client.now - before
        assert issued < system.costs.remote_latency, \
            "issuing must cost far less than a round trip"
        assert not promise.is_ready()
        promise.wait()
        assert promise.is_ready()

    def test_overlap_beats_sequential(self, kv):
        system, server, client, store, proxy = kv
        keys = ["a", "b", "c", "d"] * 2
        t0 = client.now
        for key in keys:
            proxy.get(key)
        sequential = client.now - t0
        t0 = client.now
        gather([call_async(proxy, "get", key) for key in keys])
        pipelined = client.now - t0
        assert pipelined < sequential / 2

    def test_errors_raise_at_wait_not_issue(self, kv):
        system, server, client, store, proxy = kv
        server.node.crash()
        promise = call_async(proxy, "get", "a")   # no raise here
        with pytest.raises(RpcTimeout):
            promise.wait()

    def test_results_match_synchronous(self, kv):
        system, server, client, store, proxy = kv
        promises = [call_async(proxy, "get", key) for key in "abcd"]
        assert gather(promises) == ["A", "B", "C", "D"]

    def test_server_processes_in_issue_order(self, kv):
        system, server, client, store, proxy = kv
        first = call_async(proxy, "put", "seq", 1)
        second = call_async(proxy, "put", "seq", 2)
        gather([first, second])
        assert store.data["seq"] == 2

    def test_ready_at_is_in_the_future(self, kv):
        system, server, client, store, proxy = kv
        promise = call_async(proxy, "get", "a")
        assert promise.ready_at > client.now


class TestFailurePaths:
    def test_succeeded_and_error_peek_without_raising(self, kv):
        system, server, client, store, proxy = kv
        good = call_async(proxy, "get", "a")
        assert good.succeeded and good.error is None
        server.node.crash()
        bad = call_async(proxy, "get", "a")
        assert not bad.succeeded
        assert isinstance(bad.error, RpcTimeout)

    def test_waiting_an_error_promise_twice_raises_twice(self, kv):
        system, server, client, store, proxy = kv
        server.node.crash()
        promise = call_async(proxy, "get", "a")
        with pytest.raises(RpcTimeout):
            promise.wait()
        with pytest.raises(RpcTimeout):
            promise.wait()

    def test_is_ready_flips_as_the_clock_passes_ready_at(self, kv):
        system, server, client, store, proxy = kv
        promise = call_async(proxy, "get", "a")
        assert not promise.is_ready()
        client.clock.advance_to(promise.ready_at)
        assert promise.is_ready()
        assert promise.wait() == "A"

    def test_promise_survives_message_loss_via_retransmission(self, kv):
        system, server, client, store, proxy = kv
        with message_loss(system, 0.3):
            promises = [call_async(proxy, "get", "a") for _ in range(10)]
            assert gather(promises) == ["A"] * 10

    def test_retry_and_deadline_pass_through(self, kv):
        system, server, client, store, proxy = kv
        from repro.resilience.retry import RetryPolicy
        server.node.crash()
        before = client.now
        promise = call_async(proxy, "get", "a",
                             retry=RetryPolicy(attempts=1))
        with pytest.raises(RpcTimeout):
            promise.wait()
        # One attempt's patience, not the protocol's full default budget.
        assert client.now - before < 2 * system.costs.rpc_timeout


class TestDiscard:
    def test_discard_drops_an_unwaited_result(self, kv):
        system, server, client, store, proxy = kv
        promise = call_async(proxy, "get", "a")
        assert promise.discard() is True
        events = system.trace.select(
            kind="promise",
            predicate=lambda ev: ev.label == "dropped-unwaited")
        assert len(events) == 1

    def test_discard_after_wait_is_a_noop(self, kv):
        system, server, client, store, proxy = kv
        promise = call_async(proxy, "get", "a")
        promise.wait()
        assert promise.discard() is False
        assert not system.trace.select(
            kind="promise",
            predicate=lambda ev: ev.label == "dropped-unwaited")

    def test_double_discard_drops_once(self, kv):
        system, server, client, store, proxy = kv
        promise = call_async(proxy, "get", "a")
        assert promise.discard() is True
        assert promise.discard() is False
        events = system.trace.select(
            kind="promise",
            predicate=lambda ev: ev.label == "dropped-unwaited")
        assert len(events) == 1, \
            "a repeated discard must not emit a second trace event"

    def test_wait_after_discard_raises(self, kv):
        system, server, client, store, proxy = kv
        promise = call_async(proxy, "get", "a")
        promise.discard()
        with pytest.raises(SimulationError):
            promise.wait()

    def test_discarded_property_tracks_state(self, kv):
        system, server, client, store, proxy = kv
        promise = call_async(proxy, "get", "a")
        assert promise.discarded is False
        promise.discard()
        assert promise.discarded is True
        promise.discard()    # idempotent: still just discarded
        assert promise.discarded is True

    def test_waited_promise_never_reports_discarded(self, kv):
        system, server, client, store, proxy = kv
        promise = call_async(proxy, "get", "a")
        promise.wait()
        promise.discard()
        assert promise.discarded is False
        assert promise.wait() == "A"    # still consumable after the no-op


class TestPipelineCalls:
    def test_collects_all_results(self, kv):
        system, server, client, store, proxy = kv
        calls = [("get", key) for key in "abcd"]
        assert pipeline_calls(proxy, calls) == ["A", "B", "C", "D"]

    def test_window_bounds_outstanding(self, kv):
        system, server, client, store, proxy = kv
        calls = [("get", "a")] * 10
        results = pipeline_calls(proxy, calls, window=2)
        assert results == ["A"] * 10

    def test_windowed_slower_than_unbounded(self, kv):
        system, server, client, store, proxy = kv
        calls = [("get", "a")] * 8
        t0 = client.now
        pipeline_calls(proxy, calls)
        unbounded = client.now - t0
        t0 = client.now
        pipeline_calls(proxy, calls, window=1)
        serial = client.now - t0
        assert unbounded < serial
