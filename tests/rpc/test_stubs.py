"""Unit tests for dynamic client stubs."""

import pytest

from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.iface.interface import operation
from repro.core.service import Service
from repro.kernel.errors import InterfaceError
from repro.rpc.stubs import RemoteStub


@pytest.fixture
def stubbed(pair):
    system, server, client = pair
    store = KVStore()
    ref = get_space(server).export(store)
    stub = RemoteStub(client, ref, interface=KVStore.interface())
    return system, client, store, stub


class TestRemoteStub:
    def test_getattr_yields_callable(self, stubbed):
        system, client, store, stub = stubbed
        assert callable(stub.get)

    def test_calls_forward(self, stubbed):
        system, client, store, stub = stubbed
        stub.put("k", "v")
        assert store.data == {"k": "v"}
        assert stub.get("k") == "v"

    def test_kwargs_supported(self, stubbed):
        system, client, store, stub = stubbed
        assert stub.put(key="a", value=1) is True
        assert store.data["a"] == 1

    def test_undeclared_verb_rejected_client_side(self, stubbed):
        system, client, store, stub = stubbed
        mark = system.trace.mark()
        with pytest.raises(InterfaceError):
            stub.frobnicate
        assert not system.trace.since(mark), "no message should be sent"

    def test_underscore_attributes_are_local(self, stubbed):
        system, client, store, stub = stubbed
        with pytest.raises(AttributeError):
            stub._private

    def test_stub_prefixed_attributes_are_local(self, stubbed):
        system, client, store, stub = stubbed
        assert stub.stub_ref.oid
        with pytest.raises(AttributeError):
            stub.stub_nonexistent

    def test_uninterfaced_stub_forwards_anything(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        loose = RemoteStub(client, ref)  # no interface: server still checks
        assert loose.put("k", 1) is True
        with pytest.raises(InterfaceError):
            loose.frobnicate()

    def test_oneway_op_uses_oneway_path(self, pair):
        system, server, client = pair
        hits = []

        class Bell(Service):
            @operation(oneway=True)
            def ring(self, tone):
                hits.append(tone)

        ref = get_space(server).export(Bell())
        stub = RemoteStub(client, ref, interface=Bell.interface())
        assert stub.ring("ding") is None
        assert hits == ["ding"]
        assert system.rpc.stats["oneways"] == 1
