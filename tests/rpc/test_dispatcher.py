"""Unit tests for the server-side dispatcher: dedup, redirects, accounting."""

import pytest

from repro.apps.counter import Counter
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.kernel.errors import ObjectMoved
from repro.wire.frames import REQUEST, Frame


@pytest.fixture
def served(pair):
    system, server, client = pair
    counter = Counter()
    ref = get_space(server).export(counter)
    dispatcher = server.handler.__self__
    return system, server, client, counter, ref, dispatcher


def send_raw(system, client, ref, verb, args=(), msg_id=1):
    """Hand-deliver a raw request frame to the target dispatcher."""
    frame = Frame(REQUEST, msg_id, client.context_id, ref.context_id,
                  target=ref.oid, verb=verb, body=(args, {}))
    data = frame.encode(system.transport.encoder_for(client))
    dst = system.context(ref.context_id)
    return dst.handler(data, client.now)


class TestAtMostOnce:
    def test_duplicate_request_not_reexecuted(self, served):
        system, server, client, counter, ref, dispatcher = served
        send_raw(system, client, ref, "incr", msg_id=42)
        send_raw(system, client, ref, "incr", msg_id=42)
        assert counter.value == 1
        assert dispatcher.stats["duplicates"] == 1

    def test_duplicate_returns_identical_reply(self, served):
        system, server, client, counter, ref, dispatcher = served
        first, _ = send_raw(system, client, ref, "incr", msg_id=9)
        second, _ = send_raw(system, client, ref, "incr", msg_id=9)
        assert first == second

    def test_distinct_ids_execute_separately(self, served):
        system, server, client, counter, ref, dispatcher = served
        send_raw(system, client, ref, "incr", msg_id=1)
        send_raw(system, client, ref, "incr", msg_id=2)
        assert counter.value == 2

    def test_same_id_different_callers_do_not_collide(self, star):
        system, server, clients = star
        counter = Counter()
        ref = get_space(server).export(counter)
        send_raw(system, clients[0], ref, "incr", msg_id=5)
        send_raw(system, clients[1], ref, "incr", msg_id=5)
        assert counter.value == 2

    def test_at_most_once_off_reexecutes(self, served):
        system, server, client, counter, ref, dispatcher = served
        dispatcher.at_most_once = False
        send_raw(system, client, ref, "incr", msg_id=7)
        send_raw(system, client, ref, "incr", msg_id=7)
        assert counter.value == 2

    def test_replay_cache_capacity_evicts(self, served):
        system, server, client, counter, ref, dispatcher = served
        dispatcher.replay_capacity = 3
        for msg_id in range(1, 6):
            send_raw(system, client, ref, "incr", msg_id=msg_id)
        assert len(dispatcher._replay) == 3

    def test_forget_caller(self, served):
        system, server, client, counter, ref, dispatcher = served
        send_raw(system, client, ref, "incr", msg_id=1)
        send_raw(system, client, ref, "incr", msg_id=2)
        evicted = dispatcher.forget_caller(client.context_id)
        assert evicted == 2


class TestRedirects:
    def test_moved_object_answers_redirect(self, served):
        system, server, client, counter, ref, dispatcher = served
        space = get_space(server)
        forward = ref.moved_to("elsewhere/main")
        space.mark_migrated(ref.oid, forward)
        with pytest.raises(ObjectMoved) as excinfo:
            system.rpc.call(client, ref, "incr", ())
        assert excinfo.value.forward == forward
        assert dispatcher.stats["redirects"] == 1


class TestQueueing:
    def test_requests_serialise_on_server_clock(self, served):
        system, server, client, counter, ref, dispatcher = served
        # Two back-to-back arrivals: the second starts after the first ends.
        send_raw(system, client, ref, "incr", msg_id=1)
        first_done = server.now
        send_raw(system, client, ref, "incr", msg_id=2)
        assert server.now > first_done


class TestStats:
    def test_requests_counted(self, served):
        system, server, client, counter, ref, dispatcher = served
        send_raw(system, client, ref, "incr", msg_id=1)
        send_raw(system, client, ref, "read", msg_id=2)
        assert dispatcher.stats["requests"] == 2

    def test_exceptions_counted(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        dispatcher = server.handler.__self__
        with pytest.raises(Exception):
            system.rpc.call(client, ref, "no_such_verb", ())
        assert dispatcher.stats["requests"] == 1
