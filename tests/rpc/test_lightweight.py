"""Tests for the LRPC predicates and toggles."""

from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.rpc.lightweight import (
    fast_path_available,
    lrpc_disabled,
    lrpc_enabled,
    same_context,
    same_node,
)


class TestPredicates:
    def test_same_context(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        assert same_context(server, ref)
        assert not same_context(client, ref)

    def test_same_node_across_contexts(self, pair):
        system, server, client = pair
        sibling = server.node.create_context("second")
        ref = get_space(server).export(KVStore())
        assert same_node(sibling, ref)
        assert not same_node(client, ref)

    def test_fast_path_availability_tracks_toggle(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        assert fast_path_available(system.rpc, server, ref)
        assert not fast_path_available(system.rpc, client, ref)
        with lrpc_disabled(system.rpc):
            assert not fast_path_available(system.rpc, server, ref)
        assert fast_path_available(system.rpc, server, ref)


class TestToggles:
    def test_disabled_restores_on_exception(self, pair):
        system, server, client = pair
        try:
            with lrpc_disabled(system.rpc):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert system.rpc.lrpc_enabled

    def test_nested_toggles(self, pair):
        system, server, client = pair
        with lrpc_disabled(system.rpc):
            with lrpc_enabled(system.rpc):
                assert system.rpc.lrpc_enabled
            assert not system.rpc.lrpc_enabled
        assert system.rpc.lrpc_enabled
