"""Tests for the transport layer: hook application, costs, tracing."""


from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.core.proxy import is_proxy
from repro.wire.frames import REQUEST, Frame


class TestEncodeDecode:
    def test_encode_charges_sender(self, pair):
        system, server, client = pair
        get_space(client)
        frame = Frame(REQUEST, 1, client.context_id, server.context_id,
                      target="t", verb="v", body=(("x" * 1000,), {}))
        before = client.now
        system.transport.encode_frame(frame)
        assert client.now > before

    def test_sender_hook_swizzles_exports(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        frame = Frame(REQUEST, 1, server.context_id, client.context_id,
                      target="t", verb="v", body=((store,), {}))
        data = system.transport.encode_frame(frame)
        get_space(client)
        decoded = system.transport.decode_frame(data, client)
        (argument,), _ = decoded.body
        assert is_proxy(argument)
        assert argument.proxy_ref == ref

    def test_unmarshal_cost_scales_with_size(self, pair):
        system, server, client = pair
        small = system.transport.unmarshal_cost(100)
        big = system.transport.unmarshal_cost(1_000_000)
        assert big > small

    def test_transmit_traces_sends(self, pair):
        system, server, client = pair
        get_space(client)
        frame = Frame(REQUEST, 1, client.context_id, server.context_id,
                      target="t", verb="ping", body=((), {}))
        data = system.transport.encode_frame(frame)
        mark = system.trace.mark()
        system.transport.transmit(frame, data, client.now)
        events = system.trace.since(mark)
        assert len(events) == 1
        assert events[0].kind == "send"
        assert events[0].label == "req:ping"
        assert events[0].size == len(data)

    def test_transmit_reports_crash(self, pair):
        system, server, client = pair
        get_space(client)
        frame = Frame(REQUEST, 1, client.context_id, server.context_id,
                      target="t", verb="v", body=((), {}))
        data = frame.encode(system.transport.encoder_for(client))
        server.node.crash()
        delivery = system.transport.transmit(frame, data, client.now)
        assert not delivery.delivered
        assert delivery.reason == "crash"
