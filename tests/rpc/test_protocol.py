"""Unit tests for the RPC protocol: retries, timeouts, semantics, fast path."""

import pytest

from repro.apps.counter import Counter
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.failures.injectors import message_loss
from repro.kernel.errors import DanglingReference, InterfaceError, RpcTimeout
from repro.rpc.protocol import RemoteError
from repro.iface.interface import operation
from repro.core.service import Service


class Grumpy(Service):
    """A service whose operations raise various exceptions."""

    @operation
    def key_error(self):
        raise KeyError("missing thing")

    @operation
    def value_error(self):
        raise ValueError("bad value")

    @operation
    def custom_error(self):
        class Oddball(Exception):
            pass
        raise Oddball("weird")

    @operation(readonly=True)
    def fine(self):
        return "ok"


@pytest.fixture
def rpc_pair(pair):
    system, server, client = pair
    store = KVStore()
    ref = get_space(server).export(store)
    return system, server, client, store, ref


def call(system, client, ref, verb, *args):
    return system.rpc.call(client, ref, verb, args)


class TestBasicCalls:
    def test_remote_call_returns_value(self, rpc_pair):
        system, server, client, store, ref = rpc_pair
        assert call(system, client, ref, "put", "k", 42) is True
        assert call(system, client, ref, "get", "k") == 42

    def test_call_advances_client_clock(self, rpc_pair):
        system, server, client, store, ref = rpc_pair
        before = client.now
        call(system, client, ref, "get", "k")
        # At least two one-way remote latencies.
        assert client.now - before >= 2 * system.costs.remote_latency

    def test_server_clock_advances_too(self, rpc_pair):
        system, server, client, store, ref = rpc_pair
        call(system, client, ref, "get", "k")
        assert server.now > 0

    def test_calls_are_traced(self, rpc_pair):
        system, server, client, store, ref = rpc_pair
        mark = system.trace.mark()
        call(system, client, ref, "get", "k")
        events = system.trace.since(mark)
        kinds = [ev.kind for ev in events]
        assert kinds.count("send") == 2  # request + reply
        assert "invoke" in kinds

    def test_unknown_target_raises_dangling(self, rpc_pair):
        system, server, client, store, ref = rpc_pair
        from dataclasses import replace
        bogus = replace(ref, oid="nonexistent")
        with pytest.raises(DanglingReference):
            call(system, client, bogus, "get", "k")

    def test_undeclared_verb_rejected_server_side(self, rpc_pair):
        system, server, client, store, ref = rpc_pair
        with pytest.raises(InterfaceError):
            call(system, client, ref, "no_such_op")


class TestExceptionMapping:
    @pytest.fixture
    def grumpy(self, pair):
        system, server, client = pair
        ref = get_space(server).export(Grumpy())
        return system, client, ref

    def test_key_error_reraised(self, grumpy):
        system, client, ref = grumpy
        with pytest.raises(KeyError):
            call(system, client, ref, "key_error")

    def test_value_error_reraised(self, grumpy):
        system, client, ref = grumpy
        with pytest.raises(ValueError):
            call(system, client, ref, "value_error")

    def test_unknown_exception_becomes_remote_error(self, grumpy):
        system, client, ref = grumpy
        with pytest.raises(RemoteError) as excinfo:
            call(system, client, ref, "custom_error")
        assert excinfo.value.remote_type == "Oddball"

    def test_server_survives_exceptions(self, grumpy):
        system, client, ref = grumpy
        for _ in range(3):
            with pytest.raises(KeyError):
                call(system, client, ref, "key_error")
        assert call(system, client, ref, "fine") == "ok"


class TestRetriesAndTimeouts:
    def test_loss_is_masked_by_retries(self, rpc_pair):
        system, server, client, store, ref = rpc_pair
        with message_loss(system, 0.3):
            for index in range(30):
                assert call(system, client, ref, "put", f"k{index}", index)
        assert system.rpc.stats["retries"] > 0
        assert system.rpc.stats["timeouts"] == 0

    def test_crashed_server_times_out(self, rpc_pair):
        system, server, client, store, ref = rpc_pair
        server.node.crash()
        before = client.now
        with pytest.raises(RpcTimeout):
            call(system, client, ref, "get", "k")
        budget = (1 + system.costs.rpc_max_retries)
        assert client.now - before >= budget * system.costs.rpc_timeout * 0.9

    def test_recovery_after_restart(self, rpc_pair):
        system, server, client, store, ref = rpc_pair
        server.node.crash()
        with pytest.raises(RpcTimeout):
            call(system, client, ref, "put", "k", 1)
        server.node.restart()
        assert call(system, client, ref, "put", "k", 2) is True
        assert call(system, client, ref, "get", "k") == 2

    def test_at_most_once_under_loss(self, pair):
        system, server, client = pair
        counter = Counter()
        ref = get_space(server).export(counter)
        attempts = 40
        with message_loss(system, 0.25):
            done = 0
            for _ in range(attempts):
                try:
                    call(system, client, ref, "incr")
                    done += 1
                except RpcTimeout:
                    pass
        # Each logical increment executed at most once.
        assert counter.value <= attempts
        assert counter.value >= done

    def test_large_payload_still_completes(self, rpc_pair):
        system, server, client, store, ref = rpc_pair
        big = "x" * 200_000  # transit ≫ base timeout
        assert call(system, client, ref, "put", "big", big) is True
        assert call(system, client, ref, "get", "big") == big


class TestLocalFastPath:
    def test_same_context_call_is_cheap(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        before = server.now
        assert system.rpc.call(server, ref, "put", ("k", 1)) is True
        elapsed = server.now - before
        assert elapsed < system.costs.ipc_latency
        assert system.rpc.stats["local_fast_path"] == 1

    def test_fast_path_sends_no_messages(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        mark = system.trace.mark()
        system.rpc.call(server, ref, "get", ("k",))
        assert all(ev.kind != "send" for ev in system.trace.since(mark))

    def test_disabled_fast_path_marshals(self, pair):
        from repro.rpc.lightweight import lrpc_disabled
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        mark = system.trace.mark()
        with lrpc_disabled(system.rpc):
            system.rpc.call(server, ref, "get", ("k",))
        sends = [ev for ev in system.trace.since(mark) if ev.kind == "send"]
        assert len(sends) == 2


class TestOneway:
    def test_oneway_returns_immediately(self, pair):
        system, server, client = pair
        mailbox_log = []

        class Sink(Service):
            @operation(oneway=True)
            def fire(self, value):
                mailbox_log.append(value)

        ref = get_space(server).export(Sink())
        system.rpc.send_oneway(client, ref, "fire", ("hello",))
        assert mailbox_log == ["hello"]

    def test_oneway_loss_is_silent(self, pair):
        system, server, client = pair

        class Sink(Service):
            @operation(oneway=True)
            def fire(self, value):
                pass

        ref = get_space(server).export(Sink())
        system.network.set_default_loss(1.0)
        system.rpc.send_oneway(client, ref, "fire", ("gone",))  # no raise
