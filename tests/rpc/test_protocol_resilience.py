"""Protocol-level resilience: retry engine, deadlines, breaker feed, and the
one-way liveness regression."""

import pytest

from repro.apps.counter import Counter
from repro.core.service import Service
from repro.iface.interface import operation
from repro.kernel.errors import DeadlineExceeded, RpcTimeout
from repro.kernel.network import Delivery
from repro.naming.bootstrap import bind, register
from repro.resilience.breaker import ensure_breakers
from repro.resilience.deadline import DEADLINE_HEADER, Deadline
from repro.resilience.retry import RetryPolicy


class Sink(Service):
    """A service with a one-way operation, for the liveness regression."""

    default_policy = "stub"

    def __init__(self):
        self.received = 0

    @operation(oneway=True)
    def push(self) -> None:
        self.received += 1


class TestRetryEngine:
    def test_override_shrinks_the_attempt_budget(self, pair):
        system, server, client = pair
        register(server, "ctr", Counter())
        proxy = bind(client, "ctr")
        server.node.crash()
        retries_before = system.rpc.stats["retries"]
        before = client.clock.now
        with pytest.raises(RpcTimeout):
            system.rpc.call(client, proxy.proxy_ref, "read",
                            retry=RetryPolicy.fixed(attempts=2))
        assert system.rpc.stats["retries"] - retries_before == 1
        # Two fixed-interval attempts: roughly twice the base patience, far
        # below the default nine-attempt budget.
        assert client.clock.now - before < 3 * system.costs.rpc_timeout

    def test_exponential_backoff_waits_longer_than_fixed(self, star):
        system, server, clients = star
        register(server, "ctr", Counter())
        first = bind(clients[0], "ctr")
        second = bind(clients[1], "ctr")
        server.node.crash()
        before = clients[0].clock.now
        with pytest.raises(RpcTimeout):
            system.rpc.call(clients[0], first.proxy_ref, "read",
                            retry=RetryPolicy(attempts=3, multiplier=1.0))
        fixed_wait = clients[0].clock.now - before
        before = clients[1].clock.now
        with pytest.raises(RpcTimeout):
            system.rpc.call(clients[1], second.proxy_ref, "read",
                            retry=RetryPolicy(attempts=3, multiplier=2.0))
        backoff_wait = clients[1].clock.now - before
        assert backoff_wait > fixed_wait * 1.5, \
            "1+2+4 patience units versus 1+1+1"


class TestDeadlines:
    def test_deadline_caps_the_total_wait_exactly(self, pair):
        """Satellite regression: the final lost attempt must charge only up
        to the deadline, never the full interval past it."""
        system, server, client = pair
        register(server, "ctr", Counter())
        proxy = bind(client, "ctr")
        server.node.crash()
        budget = 2.5 * system.costs.rpc_timeout
        deadline = Deadline.after(client.clock.now, budget)
        with pytest.raises(DeadlineExceeded):
            system.rpc.call(client, proxy.proxy_ref, "read",
                            deadline=deadline)
        assert client.clock.now == pytest.approx(deadline.expires_at), \
            "the clock stops at the deadline, not at the next retry tick"

    def test_spent_budget_fails_before_the_first_attempt(self, pair):
        system, server, client = pair
        register(server, "ctr", Counter())
        proxy = bind(client, "ctr")
        calls_before = system.rpc.stats["calls"]
        sends = len(system.trace.events)
        with pytest.raises(DeadlineExceeded):
            system.rpc.call(client, proxy.proxy_ref, "read",
                            deadline=Deadline(client.clock.now - 1.0))
        assert system.rpc.stats["calls"] == calls_before + 1
        assert not [ev for ev in system.trace.events[sends:]
                    if ev.kind == "send"], "nothing crossed the wire"

    def test_inherited_context_deadline_is_merged(self, pair):
        """A context serving a nearly-dead request must not start calls."""
        system, server, client = pair
        register(server, "ctr", Counter())
        proxy = bind(client, "ctr")
        client.current_deadline = Deadline(client.clock.now - 0.1)
        try:
            with pytest.raises(DeadlineExceeded):
                system.rpc.call(client, proxy.proxy_ref, "read")
        finally:
            client.current_deadline = None

    def test_deadline_travels_in_the_frame_headers(self, pair):
        system, server, client = pair
        register(server, "ctr", Counter())
        proxy = bind(client, "ctr")
        seen = {}
        transport = system.rpc.transport
        original = transport.transmit

        def spy(frame, data, at):
            if frame.verb:
                seen[frame.verb] = dict(frame.headers)
            return original(frame, data, at)

        transport.transmit = spy
        try:
            deadline = Deadline.after(client.clock.now, 1.0)
            system.rpc.call(client, proxy.proxy_ref, "read",
                            deadline=deadline)
        finally:
            transport.transmit = original
        assert seen["read"][DEADLINE_HEADER] == deadline.expires_at

    def test_server_skips_dispatch_of_expired_requests(self, pair):
        """The wire half: a request arriving past its expiry is rejected
        without executing the operation."""
        system, server, client = pair
        counter = Counter()
        register(server, "ctr", counter)
        proxy = bind(client, "ctr")
        # Expire mid-flight: past the send-time check, spent on arrival.
        transit = system.network.transit_time(client.node.name,
                                             server.node.name, 64)
        deadline = Deadline.after(client.clock.now, transit * 0.5)
        with pytest.raises(DeadlineExceeded):
            system.rpc.call(client, proxy.proxy_ref, "incr",
                            deadline=deadline)
        assert counter.value == 0, "the increment must not have executed"
        dispatcher = server.handler.__self__
        assert dispatcher.stats["deadline_rejects"] == 1


class TestBreakerFeed:
    def test_protocol_feeds_outcomes_once_a_registry_exists(self, pair):
        system, server, client = pair
        register(server, "ctr", Counter())
        proxy = bind(client, "ctr")
        registry = ensure_breakers(system, failure_threshold=2)
        system.rpc.call(client, proxy.proxy_ref, "read")
        assert registry.counters.get("rpc.successes") >= 1
        server.node.crash()
        with pytest.raises(RpcTimeout):
            system.rpc.call(client, proxy.proxy_ref, "read",
                            retry=RetryPolicy.fixed(attempts=1))
        assert registry.counters.get("rpc.failures") == 1
        breaker = registry.between(client.context_id, server.context_id)
        assert breaker.consecutive_failures == 1

    def test_no_registry_means_no_feeding(self, pair):
        system, server, client = pair
        register(server, "ctr", Counter())
        proxy = bind(client, "ctr")
        assert system.breakers is None
        system.rpc.call(client, proxy.proxy_ref, "read")
        assert system.breakers is None, "plain traffic must not install one"


class TestOnewayLiveness:
    def test_in_flight_oneway_is_not_executed_on_a_crashed_node(self, pair):
        """Satellite regression: send_oneway checked only ``handler`` and
        would execute a delivered frame on a crashed node.  Bypass the
        network's own send-time liveness check to model a message already
        in flight when the crash hits."""
        system, server, client = pair
        sink = Sink()
        register(server, "snk", sink)
        proxy = bind(client, "snk")
        proxy.push()
        assert sink.received == 1

        transport = system.rpc.transport
        original = transport.transmit
        transport.transmit = lambda frame, data, at: Delivery(True, at + 1e-4)
        try:
            server.node.crash()
            proxy.push()   # delivered by the patched network, but…
        finally:
            transport.transmit = original
        assert sink.received == 1, \
            "a crashed context must not execute a delivered one-way frame"

    def test_oneway_to_an_unknown_context_is_dropped(self, pair):
        system, server, client = pair
        sink = Sink()
        register(server, "snk", sink)
        proxy = bind(client, "snk")
        proxy.proxy_ref = proxy.proxy_ref.__class__(
            "ghost/main", proxy.proxy_ref.oid, proxy.proxy_ref.interface,
            proxy.proxy_ref.epoch, proxy.proxy_ref.policy)
        transport = system.rpc.transport
        original = transport.transmit
        transport.transmit = lambda frame, data, at: Delivery(True, at + 1e-4)
        try:
            proxy.push()   # must not raise, must not execute
        finally:
            transport.transmit = original
        assert sink.received == 0
