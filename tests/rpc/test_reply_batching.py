"""Server-side reply batching: coalescing, equivalence, fall-through.

The contract under test (perf round 2's tentpole): same-tick oneways to
one (source context, destination node) link may collapse into a single
``mrp`` frame, and **nothing else may change** — client-visible results,
virtual-time instants, and every RNG draw are identical with batching
on, off, or structurally impossible.
"""

from __future__ import annotations

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.failures.injectors import message_loss
from repro.metrics.counters import MessageWindow


def _fanout_system(batching: bool):
    """A caching service with two subscriber contexts on ONE node (the
    coalescible shape) plus a writer on its own node."""
    sys_ = repro.make_system(seed=77)
    server = sys_.add_node("server").create_context("main")
    shared = sys_.add_node("shared")
    sub_a = shared.create_context("a")
    sub_b = shared.create_context("b")
    writer = sys_.add_node("writer").create_context("main")
    sys_.rpc.reply_batching = batching
    ref = get_space(server).export(KVStore(), policy="caching")
    proxy_a = get_space(sub_a).bind_ref(ref, handshake=True)
    proxy_b = get_space(sub_b).bind_ref(ref, handshake=True)
    writer_proxy = get_space(writer).bind_ref(ref, handshake=True)
    return sys_, (proxy_a, proxy_b, writer_proxy)


def _run_fanout(batching: bool) -> dict:
    sys_, (proxy_a, proxy_b, writer_proxy) = _fanout_system(batching)
    writer_proxy.put("k", 1)
    # Warm both subscriber caches so the next write must invalidate both.
    assert proxy_a.get("k") == 1
    assert proxy_b.get("k") == 1
    before = dict(sys_.rpc.stats)
    with MessageWindow(sys_) as window:
        writer_proxy.put("k", 2)
    reads = (proxy_a.get("k"), proxy_b.get("k"))
    stats = sys_.rpc.stats
    return {
        "reads": reads,
        "messages": window.report.messages,
        "clock": sys_.max_time(),
        "batches": stats["reply_batches"] - before["reply_batches"],
        "coalesced": (stats["coalesced_oneways"]
                      - before["coalesced_oneways"]),
        "fingerprint": sys_.trace.fingerprint(),
    }


class TestCoalescing:
    def test_same_node_subscribers_coalesce_into_one_frame(self):
        # Three caches subscribe (two on the shared node, the writer's
        # own); one put coalesces exactly the shared pair.
        run = _run_fanout(batching=True)
        assert run["batches"] == 1
        assert run["coalesced"] == 2
        assert run["reads"] == (2, 2)

    def test_coalescing_drops_message_count_only(self):
        on = _run_fanout(batching=True)
        off = _run_fanout(batching=False)
        assert off["batches"] == 0
        # Two invalidate sends collapse into one mrp send.
        assert on["messages"] == off["messages"] - 1
        # Everything the application can observe is untouched.
        assert on["reads"] == off["reads"]
        assert on["clock"] == off["clock"]

    def test_batch_frame_appears_in_the_trace(self):
        sys_, (proxy_a, proxy_b, writer_proxy) = _fanout_system(True)
        writer_proxy.put("k", 1)
        proxy_a.get("k")
        proxy_b.get("k")
        mark = sys_.trace.mark()
        writer_proxy.put("k", 2)
        lines = [event for event in sys_.trace.since(mark)
                 if event.kind == "send"]
        labels = [event.label for event in lines]
        # The shared-node pair collapsed into one batch; the writer's own
        # cache sits alone on its node, so its invalidate replays the
        # exact inline send beside the batch.
        assert labels.count("mrp") == 1
        assert labels.count("one:invalidate") == 1


class TestEquivalence:
    def test_no_fanout_means_byte_identical_traces(self):
        # One subscriber: no run of length ≥ 2 can form, so batching on
        # must replay the exact inline sends — fingerprint included.
        def run(batching):
            sys_ = repro.make_system(seed=31)
            server = sys_.add_node("server").create_context("main")
            client = sys_.add_node("client").create_context("main")
            sys_.rpc.reply_batching = batching
            ref = get_space(server).export(KVStore(), policy="caching")
            proxy = get_space(client).bind_ref(ref, handshake=True)
            proxy.put("k", 1)
            proxy.get("k")
            proxy.put("k", 2)
            assert proxy.get("k") == 2
            return sys_.trace.fingerprint(), sys_.rpc.stats["reply_batches"]

        fp_on, batches = run(True)
        fp_off, _ = run(False)
        assert batches == 0
        assert fp_on == fp_off

    def test_lossy_links_fall_through_to_inline_sends(self):
        # An unreliable link has an RNG draw per transmission; staging
        # would reorder it.  The stage guard must refuse, leaving the
        # whole run — draws, retries, trace — identical to batching off.
        def run(batching):
            sys_, (proxy_a, proxy_b, writer_proxy) = _fanout_system(
                batching)
            writer_proxy.put("k", 1)
            proxy_a.get("k")
            proxy_b.get("k")
            before = sys_.rpc.stats["reply_batches"]
            mark = sys_.trace.mark()
            with message_loss(sys_, 0.2):
                writer_proxy.put("k", 2)
                reads = (proxy_a.get("k"), proxy_b.get("k"))
            return (reads, list(sys_.trace.since(mark)),
                    sys_.rpc.stats["reply_batches"] - before)

        reads_on, events_on, batches_on = run(True)
        reads_off, events_off, _ = run(False)
        assert batches_on == 0
        assert reads_on == reads_off
        assert events_on == events_off

    def test_batching_is_an_instance_toggle(self):
        sys_ = repro.make_system(seed=5)
        assert sys_.rpc.reply_batching is True
        sys_.rpc.reply_batching = False
        other = repro.make_system(seed=5)
        assert other.rpc.reply_batching is True  # per-system, not global
