"""Tests for the weakly-consistent DSM protocol."""

import pytest

import repro
from repro.dsm.coherence import CoherenceProtocol
from repro.dsm.heap import SharedHeap
from repro.dsm.pages import Mode, SharedRegion
from repro.dsm.weak import WeakCoherence


@pytest.fixture
def weak_cluster():
    system = repro.make_system(seed=88)
    contexts = [system.add_node(f"n{i}").create_context("m") for i in range(3)]
    region = SharedRegion("w", contexts[0], num_pages=2, slots_per_page=8)
    for ctx in contexts[1:]:
        region.attach(ctx)
    protocol = WeakCoherence(region, staleness_bound=0.01)
    heap = SharedHeap(region, protocol)
    heap.alloc(16)
    return system, contexts, region, protocol, heap


class TestWeakReads:
    def test_fresh_read_sees_current_value(self, weak_cluster):
        system, contexts, region, protocol, heap = weak_cluster
        heap.write(contexts[0], 0, "v1")
        assert heap.read(contexts[1], 0) == "v1"

    def test_reads_within_bound_may_be_stale(self, weak_cluster):
        system, contexts, region, protocol, heap = weak_cluster
        heap.write(contexts[0], 0, "old")
        assert heap.read(contexts[1], 0) == "old"   # snapshot taken
        heap.write(contexts[0], 0, "new")
        # Within the bound: the stale snapshot serves.
        assert heap.read(contexts[1], 0) == "old"
        assert protocol.stats["stale_reads"] == 1

    def test_staleness_bound_forces_refresh(self, weak_cluster):
        system, contexts, region, protocol, heap = weak_cluster
        heap.write(contexts[0], 0, "old")
        heap.read(contexts[1], 0)
        heap.write(contexts[0], 0, "new")
        contexts[1].clock.advance(0.02)   # beyond the 10 ms bound
        assert heap.read(contexts[1], 0) == "new"

    def test_sync_forces_fresh_view(self, weak_cluster):
        system, contexts, region, protocol, heap = weak_cluster
        heap.write(contexts[0], 0, "old")
        heap.read(contexts[1], 0)
        heap.write(contexts[0], 0, "new")
        dropped = protocol.sync(contexts[1])
        assert dropped == 1
        assert heap.read(contexts[1], 0) == "new"

    def test_owner_always_reads_own_truth(self, weak_cluster):
        system, contexts, region, protocol, heap = weak_cluster
        heap.write(contexts[1], 0, "mine")
        assert heap.read(contexts[1], 0) == "mine"
        heap.write(contexts[1], 0, "mine2")
        assert heap.read(contexts[1], 0) == "mine2"
        assert protocol.stats["stale_reads"] == 0

    def test_writer_snapshot_tracks_own_writes(self, weak_cluster):
        system, contexts, region, protocol, heap = weak_cluster
        heap.write(contexts[0], 0, "a")
        heap.read(contexts[1], 0)
        heap.write(contexts[1], 1, "b")    # same page, new owner
        assert heap.read(contexts[1], 1) == "b"


class TestWeakProtocolCosts:
    def test_no_invalidations_ever(self, weak_cluster):
        system, contexts, region, protocol, heap = weak_cluster
        heap.read(contexts[1], 0)
        heap.read(contexts[2], 0)
        heap.write(contexts[0], 0, "x")
        heap.write(contexts[1], 0, "y")
        assert protocol.stats["invalidations_sent"] == 0

    def test_cheaper_than_strong_under_sharing(self):
        def total_messages(protocol_cls):
            system = repro.make_system(seed=9)
            contexts = [system.add_node(f"n{i}").create_context("m")
                        for i in range(3)]
            region = SharedRegion("r", contexts[0], 2, 8)
            for ctx in contexts[1:]:
                region.attach(ctx)
            protocol = protocol_cls(region)
            heap = SharedHeap(region, protocol)
            heap.alloc(8)
            mark = system.trace.mark()
            for round_no in range(20):
                heap.write(contexts[round_no % 3], 0, round_no)
                heap.read(contexts[(round_no + 1) % 3], 0)
                heap.read(contexts[(round_no + 2) % 3], 0)
            return len([ev for ev in system.trace.since(mark)
                        if ev.kind == "send"])

        assert total_messages(WeakCoherence) < \
            total_messages(CoherenceProtocol)

    def test_single_writer_still_holds(self, weak_cluster):
        system, contexts, region, protocol, heap = weak_cluster
        for ctx in contexts:
            heap.write(ctx, 0, ctx.context_id)
        writers = [cache for cache in region.caches.values()
                   if cache.mode(0) is Mode.WRITE]
        assert len(writers) == 1
