"""Tests for the DSM substrate: pages, coherence protocol, heap, KV layer."""

import pytest

import repro
from repro.dsm.coherence import CoherenceProtocol
from repro.dsm.heap import DsmKV, SharedHeap, make_dsm_kv
from repro.dsm.pages import Mode, SharedRegion
from repro.kernel.errors import ConfigurationError


@pytest.fixture
def cluster():
    system = repro.make_system(seed=77)
    contexts = [system.add_node(f"n{i}").create_context("m") for i in range(3)]
    region = SharedRegion("r", contexts[0], num_pages=4, slots_per_page=8)
    for ctx in contexts[1:]:
        region.attach(ctx)
    protocol = CoherenceProtocol(region)
    return system, contexts, region, protocol


class TestRegion:
    def test_manager_starts_owning_everything(self, cluster):
        system, contexts, region, protocol = cluster
        cache = region.cache_of(contexts[0])
        assert all(cache.mode(page) is Mode.WRITE
                   for page in range(region.num_pages))

    def test_attach_is_idempotent(self, cluster):
        system, contexts, region, protocol = cluster
        assert region.attach(contexts[1]) is region.attach(contexts[1])

    def test_unattached_context_rejected(self, cluster):
        system, contexts, region, protocol = cluster
        stranger = system.add_node("x").create_context("m")
        with pytest.raises(ConfigurationError):
            region.cache_of(stranger)

    def test_zero_pages_rejected(self, cluster):
        system, contexts, region, protocol = cluster
        with pytest.raises(ConfigurationError):
            SharedRegion("bad", contexts[0], num_pages=0)


class TestCoherence:
    def test_read_fault_then_hits(self, cluster):
        system, contexts, region, protocol = cluster
        reader = contexts[1]
        protocol.read_access(reader, 0)
        protocol.read_access(reader, 0)
        cache = region.cache_of(reader)
        assert cache.stats["read_faults"] == 1
        assert cache.stats["read_hits"] == 1

    def test_read_fault_costs_a_page_transfer(self, cluster):
        system, contexts, region, protocol = cluster
        mark = system.trace.mark()
        protocol.read_access(contexts[1], 0)
        labels = [ev.label for ev in system.trace.since(mark)]
        assert "dsm-page" in labels

    def test_multiple_readers_share(self, cluster):
        system, contexts, region, protocol = cluster
        protocol.read_access(contexts[1], 0)
        protocol.read_access(contexts[2], 0)
        state = region.directory[0]
        assert contexts[1].context_id in state.copies
        assert contexts[2].context_id in state.copies

    def test_write_invalidates_readers(self, cluster):
        system, contexts, region, protocol = cluster
        protocol.read_access(contexts[1], 0)
        protocol.write_access(contexts[2], 0)
        assert region.cache_of(contexts[1]).mode(0) is Mode.NONE
        assert region.cache_of(contexts[2]).mode(0) is Mode.WRITE

    def test_single_writer_invariant(self, cluster):
        system, contexts, region, protocol = cluster
        for ctx in contexts:
            protocol.write_access(ctx, 1)
        writers = [c for c in region.caches.values()
                   if c.mode(1) is Mode.WRITE]
        assert len(writers) == 1

    def test_ownership_transfers(self, cluster):
        system, contexts, region, protocol = cluster
        protocol.write_access(contexts[2], 0)
        assert region.directory[0].owner == contexts[2].context_id
        assert region.directory[0].version == 1

    def test_write_hit_after_ownership(self, cluster):
        system, contexts, region, protocol = cluster
        protocol.write_access(contexts[1], 0)
        protocol.write_access(contexts[1], 0)
        assert region.cache_of(contexts[1]).stats["write_hits"] == 1

    def test_faults_advance_virtual_time(self, cluster):
        system, contexts, region, protocol = cluster
        before = contexts[1].now
        protocol.read_access(contexts[1], 0)
        assert contexts[1].now > before

    def test_ping_pong_costs_grow(self, cluster):
        """Alternating writers pay full invalidation+transfer every time."""
        system, contexts, region, protocol = cluster
        a, b = contexts[1], contexts[2]
        protocol.write_access(a, 0)
        t0 = b.now
        protocol.write_access(b, 0)
        ping_pong_cost = b.now - t0
        assert ping_pong_cost > system.costs.remote_latency


class TestHeap:
    def test_read_write_roundtrip(self, cluster):
        system, contexts, region, protocol = cluster
        heap = SharedHeap(region, protocol)
        slot = heap.alloc()
        heap.write(contexts[1], slot, "hello")
        assert heap.read(contexts[2], slot) == "hello"

    def test_alloc_exhaustion(self, cluster):
        system, contexts, region, protocol = cluster
        heap = SharedHeap(region, protocol)
        heap.alloc(heap.capacity)
        with pytest.raises(ConfigurationError):
            heap.alloc()

    def test_out_of_range_slot_rejected(self, cluster):
        system, contexts, region, protocol = cluster
        heap = SharedHeap(region, protocol)
        with pytest.raises(ConfigurationError):
            heap.read(contexts[0], heap.capacity + 1)

    def test_unwritten_slot_reads_none(self, cluster):
        system, contexts, region, protocol = cluster
        heap = SharedHeap(region, protocol)
        assert heap.read(contexts[1], heap.alloc()) is None


class TestDsmKV:
    def test_get_put(self):
        system = repro.make_system(seed=5)
        manager = system.add_node("m").create_context("c")
        member = system.add_node("w").create_context("c")
        kv = make_dsm_kv(manager, [member], num_pages=8)
        kv.put(member, "k", 1)
        assert kv.get(manager, "k") == 1
        assert kv.get(member, "missing") is None

    def test_slot_mapping_is_stable(self):
        system = repro.make_system(seed=5)
        manager = system.add_node("m").create_context("c")
        kv = make_dsm_kv(manager, [], num_pages=8)
        assert kv.slot_of("abc") == kv.slot_of("abc")

    def test_collision_semantics_last_write_wins(self):
        system = repro.make_system(seed=5)
        manager = system.add_node("m").create_context("c")
        kv = DsmKV(SharedHeap(SharedRegion("r", manager, 1, 1)), capacity=1)
        kv.put(manager, "a", 1)
        kv.put(manager, "b", 2)
        assert kv.get(manager, "b") == 2
        assert kv.get(manager, "a") is None, "slot was overwritten"
