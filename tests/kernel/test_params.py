"""Tests for the cost model and its effect on measurements."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.kernel.params import DEFAULT_COSTS, CostModel


class TestCostModel:
    def test_defaults_have_sane_ratios(self):
        costs = DEFAULT_COSTS
        assert costs.local_call < costs.ipc_latency < costs.remote_latency
        assert costs.remote_latency < costs.disk_latency * 100
        assert costs.rpc_timeout > 2 * costs.remote_latency

    def test_with_overrides_replaces_only_named(self):
        costs = DEFAULT_COSTS.with_overrides(remote_latency=5e-3)
        assert costs.remote_latency == 5e-3
        assert costs.byte_cost == DEFAULT_COSTS.byte_cost

    def test_cost_model_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.remote_latency = 1.0


class TestCostsDriveMeasurements:
    def _round_trip(self, costs: CostModel | None) -> float:
        system = repro.make_system(seed=7, costs=costs)
        server = system.add_node("s").create_context("m")
        client = system.add_node("c").create_context("m")
        store = KVStore()
        ref = get_space(server).export(store)
        proxy = get_space(client).bind_ref(ref, handshake=False)
        proxy.get("warm")
        before = client.now
        proxy.get("warm")
        return client.now - before

    def test_higher_latency_slower_calls(self):
        slow = DEFAULT_COSTS.with_overrides(remote_latency=1e-2)
        assert self._round_trip(slow) > self._round_trip(None) * 3

    def test_round_trip_at_least_two_hops(self):
        elapsed = self._round_trip(None)
        assert elapsed >= 2 * DEFAULT_COSTS.remote_latency

    def test_byte_costs_matter_for_bulk(self):
        system = repro.make_system(seed=7)
        server = system.add_node("s").create_context("m")
        client = system.add_node("c").create_context("m")
        store = KVStore()
        ref = get_space(server).export(store)
        proxy = get_space(client).bind_ref(ref, handshake=False)
        t0 = client.now
        proxy.put("small", "x")
        small = client.now - t0
        t0 = client.now
        proxy.put("big", "x" * 100_000)
        big = client.now - t0
        assert big > small * 10
