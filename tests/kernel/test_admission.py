"""Tests for the server-side overload stack (repro.kernel.admission)."""

import pytest

import repro
from repro.kernel.admission import (
    AdmissionControl,
    RunQueue,
    TokenBucket,
    install_admission,
)
from repro.kernel.errors import ConfigurationError, Overloaded
from repro.naming.bootstrap import bind, install_name_service, register
from repro.resilience.retry import RetryPolicy


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert bucket.available(0.0) == 3.0
        assert bucket.take(0.0)
        assert bucket.take(0.0)
        assert bucket.take(0.0)
        assert not bucket.take(0.0)

    def test_refill_is_linear_and_capped_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.take(0.0)
        bucket.take(0.0)
        assert bucket.available(0.05) == pytest.approx(0.5)
        # Far in the future the level saturates at the burst, not beyond.
        assert bucket.available(100.0) == 2.0

    def test_refusal_peeks_without_consuming(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.refusal(0.0) is None
        assert bucket.available(0.0) == 1.0, "a peek must not spend tokens"
        bucket.take(0.0)
        hint = bucket.refusal(0.0)
        # The hint is exact: one token accrues in exactly 1/rate seconds.
        assert hint == pytest.approx(0.1)
        assert bucket.take(hint)

    def test_backwards_time_never_refills(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        bucket.take(5.0)
        # Arrival times interleave across client clocks; an earlier
        # timestamp must not mint tokens (or raise).
        assert bucket.available(1.0) == 0.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0.5)


class TestRunQueue:
    def test_capacity_bounds_admission(self):
        queue = RunQueue(capacity=2)
        assert queue.offer(0.0)
        assert queue.offer(0.0)
        assert not queue.offer(0.0)
        assert queue.depth(0.0) == 2

    def test_unbounded_always_admits(self):
        queue = RunQueue(capacity=None)
        for _ in range(1000):
            assert queue.offer(0.0)

    def test_slots_drain_at_their_recorded_finish_time(self):
        queue = RunQueue(capacity=1)
        assert queue.offer(0.0)
        queue.finish(1.0)
        assert queue.depth(0.5) == 1, "the slot is held until its end"
        assert not queue.offer(0.5)
        assert queue.depth(1.5) == 0
        assert queue.offer(1.5)

    def test_free_at_names_the_earliest_end(self):
        queue = RunQueue(capacity=3)
        for _ in range(3):
            queue.offer(0.0)
        queue.finish(3.0)
        queue.finish(2.0)
        assert queue.free_at(0.0) == 2.0
        # Still-running work has no recorded end: no hint to give.
        assert RunQueue(capacity=1).free_at(0.0) is None

    def test_finish_without_offer_raises(self):
        with pytest.raises(ConfigurationError):
            RunQueue(capacity=1).finish(1.0)

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            RunQueue(capacity=0)


class TestAdmissionControl:
    def test_queue_refusal_conserves_tokens(self):
        control = AdmissionControl(capacity=1, rate=100.0, burst=5.0)
        assert control.admit("svc", 0.0) is None
        # The queue is now full: the refusal must not spend a token.
        before = control._bucket("*").available(0.0)
        assert control.admit("svc", 0.0) is not None
        assert control._bucket("*").available(0.0) == before
        assert control.snapshot()["shed_queue"] == 1

    def test_throttle_refusal_holds_no_queue_slot(self):
        control = AdmissionControl(capacity=4, rate=1.0, burst=1.0)
        assert control.admit("svc", 0.0) is None
        assert control.admit("svc", 0.0) is not None   # bucket empty
        assert control.depth("svc", 0.0) == 1, \
            "a throttle shed must not occupy a queue slot"
        counters = control.snapshot()
        assert counters["shed_throttle"] == 1
        assert counters["admitted"] == 1

    def test_queue_hint_is_the_earliest_free_slot(self):
        control = AdmissionControl(capacity=1, service_time=0.5)
        assert control.admit("svc", 0.0) is None
        control.finish("svc", 2.0)
        assert control.admit("svc", 1.0) == 2.0

    def test_bulkhead_partitions_per_class(self):
        control = AdmissionControl(
            capacity=3, bulkhead={"hot": 2, "*": 1})
        control.assign("h", "hot")
        assert control.admit("h", 0.0) is None
        assert control.admit("h", 0.0) is None
        assert control.admit("h", 0.0) is not None, "hot compartment full"
        # The default compartment still has its slot: hot cannot starve it.
        assert control.admit("other", 0.0) is None
        counters = control.snapshot()
        assert counters["admitted:hot"] == 2
        assert counters["shed_queue:hot"] == 1
        assert counters["admitted:*"] == 1

    def test_bulkhead_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionControl(bulkhead={"*": 2})    # no capacity to split
        with pytest.raises(ConfigurationError):
            AdmissionControl(capacity=4, bulkhead={"hot": 4})   # no default
        with pytest.raises(ConfigurationError):
            AdmissionControl(capacity=4, bulkhead={"hot": 2, "*": 1})

    def test_per_class_rates(self):
        control = AdmissionControl(rates={"hot": (1.0, 1.0)})
        control.assign("h", "hot")
        assert control.admit("h", 0.0) is None
        assert control.admit("h", 0.0) is not None
        # A class without its own bucket (and no default) is unthrottled.
        for _ in range(10):
            assert control.admit("cold", 0.0) is None


def _small_system(seed=7):
    system = repro.make_system(seed=seed)
    server = system.add_node("server").create_context("main")
    alice = system.add_node("alice").create_context("main")
    bob = system.add_node("bob").create_context("main")
    install_name_service(server)
    from repro.apps.kv import KVStore
    register(server, "kv", KVStore())
    proxies = (bind(alice, "kv"), bind(bob, "kv"))
    return system, server, (alice, bob), proxies


class TestDispatcherIntegration:
    def test_full_queue_sheds_with_retry_after(self):
        system, server, (alice, bob), (kv_a, kv_b) = _small_system()
        install_admission(server.node, capacity=1, service_time=1.0)
        system.rpc.retry_policy = RetryPolicy(attempts=1)
        kv_a.put("x", 1)    # admitted; drains over 1 s of virtual time
        invoke = bob.clock.now
        with pytest.raises(Overloaded) as err:
            kv_b.put("y", 2)
        assert err.value.retry_after is not None
        assert err.value.retry_after > invoke, \
            "the hint is an absolute future virtual time"
        admission = server.node.admission
        counters = admission.snapshot()
        assert counters["admitted"] == 1
        assert counters["shed_queue"] == 1
        assert system.rpc.stats["overload_sheds"] == 1

    def test_shed_calls_never_execute(self):
        system, server, (alice, bob), (kv_a, kv_b) = _small_system()
        install_admission(server.node, rate=1.0, burst=1.0)
        system.rpc.retry_policy = RetryPolicy(attempts=1)
        kv_a.put("x", 1)
        with pytest.raises(Overloaded):
            kv_b.put("x", 2)
        # The shed write left no trace server-side; once a token accrues,
        # a read still sees the admitted value.
        bob.clock.advance_to(bob.clock.now + 2.0)
        assert kv_b.get("x") == 1

    def test_shed_replies_are_not_remembered(self):
        """A retransmission of a shed request is re-admitted, not replayed.

        Shedding happens before execution, so the at-most-once cache must
        not capture the refusal — otherwise the client's honored-hint
        retransmission (same msg_id) would be served the stale rejection
        forever.
        """
        system, server, (alice, bob), (kv_a, kv_b) = _small_system()
        install_admission(server.node, rate=1.0, burst=1.0)
        kv_a.put("x", 1)    # spends the only token
        # Default policy honors the hint: the same frame is retransmitted
        # once the token has accrued, and the call succeeds.
        kv_b.put("x", 2)
        assert system.rpc.stats["retry_after_waits"] == 1
        assert kv_a.get("x") == 2

    def test_idle_admission_is_byte_identical(self):
        """An installed-but-never-shedding stack changes nothing observable.

        Same seed, same workload, with and without admission (zero service
        time, ample capacity): the traces must be fingerprint-identical —
        the PR-5 envelope convention extended to the whole admission layer.
        """
        def run(with_admission):
            system, server, (alice, bob), (kv_a, kv_b) = _small_system()
            if with_admission:
                install_admission(server.node, capacity=10 ** 6,
                                  service_time=0.0)
            kv_a.put("x", 1)
            kv_b.put("y", 2)
            assert kv_b.get("x") == 1
            assert kv_a.get("y") == 2
            return system.trace.fingerprint()

        assert run(True) == run(False)
