"""Unit tests for the trace log and its query helpers."""

from repro.kernel.trace import Trace, TraceSummary


def _fill(trace):
    trace.emit(0.0, "send", "a/m", "b/m", "req:get", 100)
    trace.emit(0.1, "send", "b/m", "a/m", "rep", 50)
    trace.emit(0.2, "drop", "a/m", "b/m", "loss", 100)
    trace.emit(0.3, "invoke", "a/m", "b/m", "get")
    trace.emit(0.4, "send", "a/m", "c/m", "req:put", 70)


class TestTrace:
    def test_record_and_len(self):
        trace = Trace()
        _fill(trace)
        assert len(trace) == 5

    def test_select_by_kind(self):
        trace = Trace()
        _fill(trace)
        assert len(trace.select(kind="send")) == 3

    def test_select_by_endpoints(self):
        trace = Trace()
        _fill(trace)
        assert len(trace.select(kind="send", src="a/m", dst="b/m")) == 1

    def test_select_with_predicate(self):
        trace = Trace()
        _fill(trace)
        big = trace.select(predicate=lambda ev: ev.size >= 100)
        assert len(big) == 2

    def test_count(self):
        trace = Trace()
        _fill(trace)
        assert trace.count("drop") == 1

    def test_bytes_sent_excludes_drops(self):
        trace = Trace()
        _fill(trace)
        assert trace.bytes_sent() == 220

    def test_messages_between_is_bidirectional(self):
        trace = Trace()
        _fill(trace)
        assert trace.messages_between("a/m", "b/m") == 2

    def test_mark_and_since(self):
        trace = Trace()
        trace.emit(0.0, "send", "x", "y")
        mark = trace.mark()
        trace.emit(1.0, "send", "x", "y")
        window = trace.since(mark)
        assert len(window) == 1
        assert window[0].time == 1.0

    def test_since_pops_latest_mark(self):
        trace = Trace()
        trace.mark()
        trace.emit(0.0, "send", "x", "y")
        assert len(trace.since()) == 1

    def test_capacity_cap(self):
        trace = Trace(capacity=2)
        _fill(trace)
        assert len(trace) == 2

    def test_clear(self):
        trace = Trace()
        _fill(trace)
        trace.clear()
        assert len(trace) == 0


class TestTraceSummary:
    def test_of_window(self):
        trace = Trace()
        _fill(trace)
        summary = TraceSummary.of(trace.events)
        assert summary.messages == 3
        assert summary.bytes == 220
        assert summary.drops == 1
        assert summary.invokes == 1

    def test_by_label(self):
        trace = Trace()
        _fill(trace)
        summary = TraceSummary.of(trace.events)
        assert summary.by_label["req:get"] == 1
        assert summary.by_label["loss"] == 1

    def test_empty(self):
        summary = TraceSummary.of([])
        assert summary.messages == 0
        assert summary.by_label == {}
