"""Unit tests for nodes and contexts."""

import pytest

from repro.kernel.errors import ConfigurationError


@pytest.fixture
def node(system):
    return system.add_node("host")


class TestNode:
    def test_create_context(self, node):
        ctx = node.create_context("svc")
        assert ctx.context_id == "host/svc"
        assert node.context("svc") is ctx

    def test_duplicate_context_rejected(self, node):
        node.create_context("svc")
        with pytest.raises(ConfigurationError):
            node.create_context("svc")

    def test_unknown_context_rejected(self, node):
        with pytest.raises(ConfigurationError):
            node.context("missing")

    def test_crash_and_restart(self, node):
        assert node.alive
        node.crash()
        assert not node.alive
        assert node.crash_count == 1
        node.restart()
        assert node.alive

    def test_contexts_reflect_liveness(self, node):
        ctx = node.create_context("svc")
        node.crash()
        assert not ctx.alive
        node.restart()
        assert ctx.alive


class TestContext:
    def test_identity(self, node):
        ctx = node.create_context("main")
        assert ctx.node is node
        assert ctx.system is node.system
        assert ctx.context_id == "host/main"

    def test_charge_advances_clock(self, node):
        ctx = node.create_context("main")
        ctx.charge(0.5)
        assert ctx.now == 0.5

    def test_registered_in_system(self, node):
        ctx = node.create_context("main")
        assert node.system.context("host/main") is ctx

    def test_unknown_context_id_rejected(self, system):
        with pytest.raises(ConfigurationError):
            system.context("no/where")

    def test_fresh_context_has_no_space(self, node):
        ctx = node.create_context("main")
        assert ctx.space is None
        assert ctx.handler is None
        assert ctx.exports == {}
        assert ctx.proxies == {}


class TestSystem:
    def test_max_time_over_contexts(self, system):
        a = system.add_node("a").create_context("m")
        b = system.add_node("b").create_context("m")
        a.charge(1.0)
        b.charge(3.0)
        assert system.max_time() == 3.0

    def test_max_time_empty(self, system):
        assert system.max_time() == 0.0

    def test_synchronize_clocks(self, system):
        a = system.add_node("a").create_context("m")
        b = system.add_node("b").create_context("m")
        a.charge(2.0)
        now = system.synchronize_clocks()
        assert now == 2.0
        assert b.now == 2.0

    def test_contexts_listing(self, system):
        system.add_node("a").create_context("m")
        system.add_node("b").create_context("m")
        assert len(system.contexts()) == 2
