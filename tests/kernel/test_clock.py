"""Unit tests for virtual time: Clock and BusyLine."""

import pytest

from repro.kernel.clock import BusyLine, Clock
from repro.kernel.errors import SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_starts_at_given_time(self):
        assert Clock(5.5).now == 5.5

    def test_advance_moves_forward(self):
        clock = Clock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0
        assert clock.now == 2.0

    def test_advance_zero_is_allowed(self):
        clock = Clock(1.0)
        assert clock.advance(0.0) == 1.0

    def test_negative_advance_rejected(self):
        clock = Clock()
        with pytest.raises(SimulationError):
            clock.advance(-0.1)

    def test_advance_to_future(self):
        clock = Clock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_past_is_noop(self):
        clock = Clock(5.0)
        clock.advance_to(2.0)
        assert clock.now == 5.0

    def test_reset(self):
        clock = Clock(9.0)
        clock.reset()
        assert clock.now == 0.0


class TestBusyLine:
    def test_idle_line_starts_immediately(self):
        line = BusyLine()
        start, end = line.occupy(2.0, 1.0)
        assert start == 2.0
        assert end == 3.0

    def test_busy_line_queues(self):
        line = BusyLine()
        line.occupy(0.0, 5.0)
        start, end = line.occupy(1.0, 2.0)
        assert start == 5.0
        assert end == 7.0

    def test_arrival_after_busy_period(self):
        line = BusyLine()
        line.occupy(0.0, 1.0)
        start, end = line.occupy(10.0, 1.0)
        assert start == 10.0

    def test_accounting(self):
        line = BusyLine()
        line.occupy(0.0, 1.0)
        line.occupy(0.0, 2.0)
        assert line.jobs == 2
        assert line.total_busy == 3.0
        assert line.busy_until == 3.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            BusyLine().occupy(0.0, -1.0)

    def test_reset(self):
        line = BusyLine()
        line.occupy(0.0, 4.0)
        line.reset()
        assert line.busy_until == 0.0
        assert line.jobs == 0

    def test_fifo_under_contention(self):
        line = BusyLine()
        ends = [line.occupy(0.0, 1.0)[1] for _ in range(5)]
        assert ends == [1.0, 2.0, 3.0, 4.0, 5.0]
