"""Unit tests for the network model: latency, loss, partitions, crashes."""

import pytest

import repro
from repro.kernel.errors import ConfigurationError
from repro.kernel.network import LinkSpec


@pytest.fixture
def net():
    system = repro.make_system(seed=5)
    system.add_node("a")
    system.add_node("b")
    system.add_node("c")
    return system


class TestTransit:
    def test_remote_latency_plus_bytes(self, net):
        costs = net.costs
        t = net.network.transit_time("a", "b", 1000)
        assert t == pytest.approx(costs.remote_latency + 1000 * costs.byte_cost)

    def test_same_node_uses_ipc_costs(self, net):
        costs = net.costs
        t = net.network.transit_time("a", "a", 1000)
        assert t == pytest.approx(costs.ipc_latency + 1000 * costs.ipc_byte_cost)

    def test_ipc_is_cheaper_than_remote(self, net):
        assert net.network.transit_time("a", "a", 100) < \
            net.network.transit_time("a", "b", 100)

    def test_link_override(self, net):
        net.network.set_link("a", "b", LinkSpec(latency=0.5, byte_cost=0.0))
        assert net.network.transit_time("a", "b", 10_000) == 0.5
        # symmetric by default
        assert net.network.transit_time("b", "a", 10_000) == 0.5
        # other links unaffected
        assert net.network.transit_time("a", "c", 0) == net.costs.remote_latency

    def test_asymmetric_link_override(self, net):
        net.network.set_link("a", "b", LinkSpec(latency=0.2, byte_cost=0.0),
                             symmetric=False)
        assert net.network.transit_time("a", "b", 0) == 0.2
        assert net.network.transit_time("b", "a", 0) == net.costs.remote_latency


class TestDelivery:
    def test_reliable_by_default(self, net):
        for _ in range(50):
            assert net.network.transmit("a", "b", 100, 0.0).delivered

    def test_arrival_time(self, net):
        delivery = net.network.transmit("a", "b", 0, 1.0)
        assert delivery.arrive_time == pytest.approx(1.0 + net.costs.remote_latency)

    def test_loss_is_probabilistic_and_seeded(self):
        def drops(seed):
            system = repro.make_system(seed=seed)
            system.add_node("a")
            system.add_node("b")
            system.network.set_default_loss(0.5)
            return [system.network.transmit("a", "b", 10, 0.0).delivered
                    for _ in range(100)]
        run1 = drops(42)
        run2 = drops(42)
        assert run1 == run2, "same seed must reproduce the same drops"
        assert 20 < sum(run1) < 80, "loss should be roughly the set rate"
        assert drops(43) != run1, "different seeds should differ"

    def test_invalid_loss_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.network.set_default_loss(1.5)

    def test_crashed_destination_drops(self, net):
        net.node("b").crash()
        delivery = net.network.transmit("a", "b", 10, 0.0)
        assert not delivery.delivered
        assert delivery.reason == "crash"

    def test_restart_restores_delivery(self, net):
        net.node("b").crash()
        net.node("b").restart()
        assert net.network.transmit("a", "b", 10, 0.0).delivered

    def test_drops_are_traced(self, net):
        net.node("b").crash()
        net.network.transmit("a", "b", 10, 0.0)
        assert net.trace.count("drop") == 1

    def test_crashed_sender_drop_is_traced(self, net):
        # A message from a dead sender dies too — and leaves the same
        # audit trail as any other drop, so chaos traces account for
        # every message whichever end failed.
        mark = net.trace.mark()
        net.node("a").crash()
        delivery = net.network.transmit("a", "b", 10, 0.0)
        assert not delivery.delivered
        assert delivery.reason == "crash"
        drops = [ev for ev in net.trace.since(mark) if ev.kind == "drop"]
        assert len(drops) == 1
        assert (drops[0].src, drops[0].dst, drops[0].label) == \
            ("a", "b", "crash")


class TestPartitions:
    def test_partition_blocks_cross_island(self, net):
        net.network.partition([{"a"}, {"b", "c"}])
        assert not net.network.transmit("a", "b", 10, 0.0).delivered
        assert net.network.transmit("b", "c", 10, 0.0).delivered

    def test_heal_restores(self, net):
        net.network.partition([{"a"}, {"b"}])
        net.network.heal()
        assert net.network.transmit("a", "b", 10, 0.0).delivered

    def test_partitioned_predicate(self, net):
        net.network.partition([{"a"}, {"b"}])
        assert net.network.partitioned("a", "b")
        assert not net.network.partitioned("b", "b")

    def test_unknown_node_in_partition_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.network.partition([{"nope"}])


class TestTopology:
    def test_duplicate_node_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.add_node("a")

    def test_unknown_node_lookup_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.network.node("zzz")
