"""Unit tests for deterministic randomness streams."""

from repro.kernel.randomness import SeedSequence


class TestSeedSequence:
    def test_same_name_same_stream_object(self):
        seeds = SeedSequence(1)
        assert seeds.stream("a") is seeds.stream("a")

    def test_same_seed_same_values(self):
        a = SeedSequence(7).stream("workload")
        b = SeedSequence(7).stream("workload")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_diverge(self):
        seeds = SeedSequence(7)
        xs = [seeds.stream("x").random() for _ in range(5)]
        ys = [seeds.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_different_master_seeds_diverge(self):
        a = SeedSequence(1).stream("s").random()
        b = SeedSequence(2).stream("s").random()
        assert a != b

    def test_creation_order_does_not_matter(self):
        first = SeedSequence(3)
        first.stream("early")
        late = first.stream("late").random()
        second = SeedSequence(3)
        assert second.stream("late").random() == late

    def test_fork_is_stable(self):
        a = SeedSequence(5).fork("child").stream("s").random()
        b = SeedSequence(5).fork("child").stream("s").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = SeedSequence(5)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()

    def test_derive_seed_stable(self):
        assert SeedSequence(9).derive_seed("n") == SeedSequence(9).derive_seed("n")
