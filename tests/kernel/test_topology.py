"""Tests for topology builders."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.kernel.topology import (
    build_regions,
    build_ring,
    build_sites,
    build_star,
)
from repro.naming.bootstrap import install_name_service


class TestStar:
    def test_shapes(self, system):
        hub, leaves = build_star(system, "hub", ["a", "b", "c"])
        assert hub.context_id == "hub/main"
        assert len(leaves) == 3
        assert {ctx.node.name for ctx in leaves} == {"a", "b", "c"}


class TestRing:
    def test_neighbours_are_fast(self, system):
        build_ring(system, 5)
        network = system.network
        near = network.transit_time("ring0", "ring1", 0)
        far = network.transit_time("ring0", "ring2", 0)
        assert near < far

    def test_ring_wraps(self, system):
        build_ring(system, 4)
        network = system.network
        assert network.transit_time("ring3", "ring0", 0) < \
            network.transit_time("ring3", "ring1", 0)


class TestSites:
    def test_lan_vs_wan_latency(self, system):
        build_sites(system, ["eu", "us"], nodes_per_site=2,
                            wan_factor=10.0)
        network = system.network
        lan = network.transit_time("eu-0", "eu-1", 0)
        wan = network.transit_time("eu-0", "us-0", 0)
        assert wan == pytest.approx(lan * 10.0)

    def test_wan_is_symmetric(self, system):
        build_sites(system, ["eu", "us"], nodes_per_site=1)
        network = system.network
        assert network.transit_time("eu-0", "us-0", 0) == \
            network.transit_time("us-0", "eu-0", 0)

    def test_three_sites_all_pairs_slow(self, system):
        build_sites(system, ["a", "b", "c"], nodes_per_site=1,
                            wan_factor=5.0)
        network = system.network
        base = system.costs.remote_latency
        for src, dst in (("a-0", "b-0"), ("b-0", "c-0"), ("a-0", "c-0")):
            assert network.transit_time(src, dst, 0) == pytest.approx(base * 5)

    def test_wan_affects_real_calls(self, system):
        sites = build_sites(system, ["eu", "us"], nodes_per_site=1,
                            wan_factor=10.0)
        eu, us = sites[0].contexts[0], sites[1].contexts[0]
        install_name_service(eu)
        repro.register(eu, "kv", KVStore())
        proxy = repro.bind(us, "kv")
        proxy.get("warm")
        before = us.now
        proxy.get("warm")
        elapsed = us.now - before
        assert elapsed >= 2 * system.costs.remote_latency * 10

    def test_replica_placement_pays_off_across_sites(self, system):
        """A replica in the client's site beats the WAN round trip."""
        sites = build_sites(system, ["eu", "us"], nodes_per_site=2,
                            wan_factor=10.0)
        eu0, eu1 = sites[0].contexts
        us0, us1 = sites[1].contexts
        install_name_service(eu0)
        ref = repro.replicate([eu1, us1], KVStore, write_quorum=1)
        repro.register(eu0, "kv", ref)
        proxy = repro.bind(us0, "kv")
        proxy.put("k", 1)
        before = us0.now
        proxy.get("k")
        elapsed = us0.now - before
        # The nearest replica is us-1: a LAN round trip, not a WAN one.
        assert elapsed < system.costs.remote_latency * 10


class TestRegions:
    def test_nodes_are_tagged_with_their_region(self, system):
        east, west = build_regions(system, ["east", "west"],
                                   nodes_per_region=2)
        assert all(ctx.node.region == "east" for ctx in east.contexts)
        assert all(ctx.node.region == "west" for ctx in west.contexts)
        assert {ctx.node.name for ctx in east.contexts} == \
            {"east-0", "east-1"}

    def test_untagged_nodes_default_to_no_region(self, system):
        plain = system.add_node("plain")
        assert plain.region == ""

    def test_lan_vs_wan_latency(self, system):
        build_regions(system, ["east", "west"], nodes_per_region=2,
                      wan_factor=10.0)
        network = system.network
        lan = network.transit_time("east-0", "east-1", 0)
        wan = network.transit_time("east-0", "west-0", 0)
        assert wan > lan * 5

    def test_wan_links_are_symmetric(self, system):
        build_regions(system, ["east", "west"], nodes_per_region=1,
                      wan_factor=10.0)
        network = system.network
        assert network.transit_time("east-0", "west-0", 0) == \
            network.transit_time("west-0", "east-0", 0)

    def test_three_regions_all_pay_the_wan(self, system):
        regions = build_regions(system, ["a", "b", "c"], nodes_per_region=1,
                                wan_factor=10.0)
        assert [region.name for region in regions] == ["a", "b", "c"]
        network = system.network
        lan_like = system.costs.remote_latency
        for src, dst in (("a-0", "b-0"), ("a-0", "c-0"), ("b-0", "c-0")):
            assert network.transit_time(src, dst, 0) >= lan_like * 10
