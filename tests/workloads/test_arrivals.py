"""Tests for open-loop arrival schedules and the open-loop driver."""

import random

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.iface.interface import Interface
from repro.kernel.admission import install_admission
from repro.kernel.errors import ConfigurationError
from repro.resilience.retry import RetryPolicy
from repro.workloads.arrivals import (
    DiurnalShape,
    SpikeShape,
    merge_arrivals,
    poisson_arrivals,
    run_open_loop,
    shaped_arrivals,
)


class TestPoisson:
    def test_deterministic_under_seed(self):
        a = poisson_arrivals(50.0, 200, random.Random(3))
        b = poisson_arrivals(50.0, 200, random.Random(3))
        assert a == b

    def test_monotone_and_anchored(self):
        times = poisson_arrivals(10.0, 100, random.Random(1), start=5.0)
        assert len(times) == 100
        assert times[0] >= 5.0
        assert all(t1 > t0 for t0, t1 in zip(times, times[1:]))

    def test_rate_sets_the_mean_gap(self):
        times = poisson_arrivals(100.0, 4000, random.Random(2))
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1.0 / 100.0, rel=0.1)


class TestShapes:
    def test_diurnal_oscillates_between_base_and_peak(self):
        shape = DiurnalShape(base_rate=10.0, peak_rate=100.0, period=1.0)
        samples = [shape(t / 100.0) for t in range(200)]
        assert min(samples) >= 10.0 - 1e-9
        assert max(samples) <= 100.0 + 1e-9
        assert shape(0.5) == pytest.approx(100.0)   # mid-period peak

    def test_spike_is_rectangular(self):
        shape = SpikeShape(base_rate=5.0, spike_rate=80.0, at=1.0,
                           duration=0.25)
        assert shape(0.5) == 5.0
        assert shape(1.1) == 80.0
        assert shape(1.3) == 5.0

    def test_thinning_respects_the_shape(self):
        shape = SpikeShape(base_rate=20.0, spike_rate=200.0, at=0.5,
                           duration=0.5)
        times = shaped_arrivals(shape, 200.0, 400, random.Random(4))
        inside = sum(1 for t in times if 0.5 <= t < 1.0)
        outside = sum(1 for t in times if t < 0.5)
        # Ten-fold rate contrast: the spike window must be far denser.
        assert inside > 3 * outside

    def test_shape_exceeding_peak_rate_is_refused(self):
        with pytest.raises(ConfigurationError):
            shaped_arrivals(lambda t: 50.0, 10.0, 10, random.Random(0))


class TestMerge:
    def test_sorted_with_lane_tiebreak(self):
        merged = merge_arrivals({"b": [1.0, 3.0], "a": [1.0, 2.0]})
        assert merged == [(1.0, "a"), (1.0, "b"), (2.0, "a"), (3.0, "b")]


def _loop_system(seed, admission=None):
    system = repro.make_system(seed=seed)
    server = system.add_node("srv").create_context("main")
    ref = get_space(server).export(KVStore(),
                                   interface=Interface.of(KVStore),
                                   policy="stub")
    clients = []
    for i in range(4):
        ctx = system.add_node(f"c{i}").create_context("main")
        clients.append((f"c{i}", ctx,
                        get_space(ctx).bind_ref(ref, handshake=True)))
    if admission:
        install_admission(server.node, **admission)
    system.rpc.retry_policy = RetryPolicy(attempts=1)
    return system, server, clients


class TestOpenLoop:
    def test_every_arrival_is_classified(self):
        system, server, clients = _loop_system(seed=5)
        times = poisson_arrivals(200.0, 60, random.Random(5), start=0.05)

        def issue(proxy, index):
            proxy.put(f"k{index % 8}", index)

        results = run_open_loop({"lane": (clients, issue)},
                                merge_arrivals({"lane": times}))
        lane = results["lane"]
        assert lane.attempted == 60
        assert lane.completed + lane.shed + lane.failed == 60
        assert lane.shed == 0 and lane.failed == 0
        assert len(lane.latencies) == lane.completed
        assert lane.span > 0
        assert lane.goodput() == pytest.approx(lane.completed / lane.span)

    def test_sheds_are_counted_not_raised(self):
        system, server, clients = _loop_system(
            seed=5, admission={"rate": 50.0, "burst": 1.0})
        times = poisson_arrivals(400.0, 80, random.Random(6), start=0.05)

        def issue(proxy, index):
            proxy.put("k", index)

        results = run_open_loop({"lane": (clients, issue)},
                                merge_arrivals({"lane": times}))
        lane = results["lane"]
        assert lane.shed > 0, "a 50/s bucket under 400/s offered must shed"
        assert lane.completed + lane.shed + lane.failed == 80
        counters = server.node.admission.snapshot()
        assert counters["shed_throttle"] >= lane.shed

    def test_slo_filters_goodput(self):
        system, server, clients = _loop_system(seed=5)
        times = poisson_arrivals(100.0, 40, random.Random(7), start=0.05)

        def issue(proxy, index):
            proxy.get("k")

        results = run_open_loop({"lane": (clients, issue)},
                                merge_arrivals({"lane": times}))
        lane = results["lane"]
        # An SLO wider than every observed latency changes nothing; an
        # impossible one zeroes the goodput.
        assert lane.goodput(10.0) == pytest.approx(lane.goodput())
        assert lane.goodput(0.0) == 0.0
