"""Tests for workload generation: distributions and the session driver."""

import random

import pytest

import repro
from repro.apps.kv import KVStore
from repro.kernel.errors import ConfigurationError
from repro.workloads.distributions import (
    HotspotSampler,
    SingleKeySampler,
    UniformSampler,
    ZipfSampler,
    key_name,
    payload,
)
from repro.workloads.sessions import (
    OpMix,
    proxy_session,
    run_interleaved,
)


class TestSamplers:
    def test_key_name_is_stable(self):
        assert key_name(7) == "k00007"

    def test_uniform_covers_space(self):
        sampler = UniformSampler(10, random.Random(1))
        seen = {sampler.sample() for _ in range(500)}
        assert len(seen) == 10

    def test_zipf_is_skewed(self):
        sampler = ZipfSampler(100, random.Random(1), s=1.2)
        draws = [sampler.sample() for _ in range(2000)]
        top = draws.count(key_name(0))
        mid = draws.count(key_name(50))
        assert top > 10 * max(mid, 1)

    def test_zipf_deterministic_under_seed(self):
        a = ZipfSampler(50, random.Random(3))
        b = ZipfSampler(50, random.Random(3))
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_hotspot_concentrates(self):
        sampler = HotspotSampler(1000, random.Random(1),
                                 hot_fraction=0.9, hot_keys=5)
        draws = [sampler.sample() for _ in range(1000)]
        hot = sum(1 for key in draws if key < key_name(5))
        assert hot > 800

    def test_single_key(self):
        sampler = SingleKeySampler(3)
        assert {sampler.sample() for _ in range(10)} == {key_name(3)}

    def test_empty_universe_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformSampler(0, random.Random(1))
        with pytest.raises(ConfigurationError):
            ZipfSampler(0, random.Random(1))

    def test_payload_size(self):
        assert len(payload(32)) == 32
        assert payload(0) == ""


class TestDriver:
    def _sessions(self, star, count=2, read_fraction=0.5):
        system, server, clients = star
        store = KVStore()
        repro.register(server, "kv", store)
        sessions = []
        for index in range(count):
            ctx = clients[index]
            proxy = repro.bind(ctx, "kv")
            mix = OpMix(read_fraction,
                        UniformSampler(10, system.seeds.stream(f"keys{index}")))
            sessions.append(proxy_session(f"s{index}", ctx, proxy, mix,
                                          system.seeds.stream(f"rng{index}")))
        return system, store, sessions

    def test_run_counts_operations(self, star):
        system, store, sessions = self._sessions(star)
        result = run_interleaved(sessions, ops_per_session=20)
        assert result.operations == 40
        assert result.failures == 0
        assert len(result.all_latencies()) == 40

    def test_read_write_mix_respected(self, star):
        system, store, sessions = self._sessions(star, count=1,
                                                 read_fraction=0.0)
        run_interleaved(sessions, 30)
        assert sessions[0].writes == 30
        assert sessions[0].reads == 0

    def test_latencies_are_positive(self, star):
        system, store, sessions = self._sessions(star)
        result = run_interleaved(sessions, 10)
        assert all(sample > 0 for sample in result.all_latencies())
        assert result.mean_latency() > 0

    def test_empty_run(self):
        result = run_interleaved([], 10)
        assert result.operations == 0
        assert result.mean_latency() == 0.0

    def test_writes_land_in_store(self, star):
        system, store, sessions = self._sessions(star, count=1,
                                                 read_fraction=0.0)
        run_interleaved(sessions, 25)
        assert len(store.data) > 0

    def test_failures_counted_not_raised(self, star):
        system, store, sessions = self._sessions(star, count=1)
        system.node("server").crash()
        result = run_interleaved(sessions, 3)
        assert result.failures == 3
