"""Tests for the trader: attribute-based service selection."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.core.proxy import is_proxy
from repro.naming.trading import TraderService


class TestTraderUnit:
    @pytest.fixture
    def trader(self):
        trader = TraderService()
        trader.export_offer("printer", {"dpi": 300, "floor": 1}, "p300")
        trader.export_offer("printer", {"dpi": 600, "floor": 2}, "p600")
        trader.export_offer("scanner", {"dpi": 600}, "s600")
        return trader

    def test_query_by_type(self, trader):
        assert sorted(trader.query("printer", {})) == ["p300", "p600"]

    def test_exact_constraint(self, trader):
        assert trader.query("printer", {"floor": 2}) == ["p600"]

    def test_comparison_constraints(self, trader):
        assert trader.query("printer", {"dpi": (">=", 400)}) == ["p600"]
        assert trader.query("printer", {"dpi": ("<", 400)}) == ["p300"]

    def test_missing_property_fails_constraint(self, trader):
        assert trader.query("scanner", {"floor": 1}) == []

    def test_prefer_orders_results(self, trader):
        assert trader.query("printer", {}, prefer=("max", "dpi")) == \
            ["p600", "p300"]
        assert trader.query("printer", {}, prefer=("min", "dpi")) == \
            ["p300", "p600"]

    def test_limit(self, trader):
        assert len(trader.query("printer", {}, limit=1)) == 1

    def test_select_best(self, trader):
        assert trader.select("printer", {}, prefer=("max", "dpi")) == "p600"

    def test_select_no_match_raises(self, trader):
        with pytest.raises(KeyError):
            trader.select("plotter", {})

    def test_withdraw(self, trader):
        offer_id = trader.export_offer("printer", {"dpi": 1200}, "p1200")
        assert trader.withdraw(offer_id) is True
        assert trader.withdraw(offer_id) is False
        assert "p1200" not in trader.query("printer", {})

    def test_update_properties(self, trader):
        offer_id = trader.export_offer("kv", {"load": 9}, "kv1")
        assert trader.update_properties(offer_id, {"load": 1}) is True
        assert trader.query("kv", {"load": ("<=", 2)}) == ["kv1"]

    def test_offer_count(self, trader):
        assert trader.offer_count("printer") == 2
        assert trader.offer_count("plotter") == 0

    def test_incomparable_constraint_fails_closed(self, trader):
        assert trader.query("printer", {"dpi": ("<=", "not-a-number")}) == []


class TestTraderDistributed:
    def test_offers_resolve_to_live_proxies(self, star):
        """The trader stores access paths; importers get working proxies."""
        system, server, clients = star
        trader = TraderService()
        repro.register(server, "trader", trader)

        # Two providers advertise their stores with a load property.
        stores = []
        for index, ctx in enumerate(clients[:2]):
            store = KVStore()
            stores.append(store)
            get_space(ctx).export(store)
            provider_trader = repro.bind(ctx, "trader")
            provider_trader.export_offer("kv", {"load": index * 10}, store)

        importer = repro.bind(clients[2], "trader")
        best = importer.select("kv", {"load": ("<=", 50)},
                               prefer=("min", "load"))
        assert is_proxy(best)
        best.put("routed", True)
        assert stores[0].data == {"routed": True}
        assert stores[1].data == {}
        repro.assert_principle(system)

    def test_load_update_redirects_future_imports(self, star):
        system, server, clients = star
        trader = TraderService()
        repro.register(server, "trader", trader)
        stores = [KVStore(), KVStore()]
        offer_ids = []
        for index, store in enumerate(stores):
            get_space(server).export(store)
            offer_ids.append(trader.export_offer(
                "kv", {"load": index}, store))
        importer = repro.bind(clients[0], "trader")
        first = importer.select("kv", {}, prefer=("min", "load"))
        first.put("a", 1)
        # Provider 0 reports heavy load; the next import goes to provider 1.
        trader.update_properties(offer_ids[0], {"load": 99})
        second = importer.select("kv", {}, prefer=("min", "load"))
        second.put("b", 2)
        assert stores[0].data == {"a": 1}
        assert stores[1].data == {"b": 2}
