"""Tests for the name service, bootstrap, and hierarchical resolution."""

import pytest

import repro
from repro.apps.kv import CachedKVStore, KVStore
from repro.core.export import get_space
from repro.core.policies.caching import CachingProxy
from repro.core.proxy import is_proxy
from repro.kernel.errors import BindError, ConfigurationError
from repro.metrics.counters import MessageWindow
from repro.naming.bootstrap import (
    install_name_service,
    make_directory_tree,
    name_service_proxy,
    resolve,
    unregister,
)
from repro.naming.service import DirectoryService, NameService


class TestNameServiceUnit:
    def test_register_lookup(self):
        ns = NameService()
        ns.register("a", "target-a")
        assert ns.lookup("a") == "target-a"

    def test_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            NameService().lookup("ghost")

    def test_reregister_replaces(self):
        ns = NameService()
        ns.register("a", 1)
        ns.register("a", 2)
        assert ns.lookup("a") == 2

    def test_unregister(self):
        ns = NameService()
        ns.register("a", 1)
        assert ns.unregister("a") is True
        assert ns.unregister("a") is False

    def test_list_names_prefix(self):
        ns = NameService()
        for name in ("svc/a", "svc/b", "other"):
            ns.register(name, 1)
        assert ns.list_names("svc/") == ["svc/a", "svc/b"]

    def test_contains(self):
        ns = NameService()
        ns.register("x", 1)
        assert ns.contains("x")
        assert not ns.contains("y")


class TestBootstrap:
    def test_single_name_service_per_system(self, star):
        system, server, clients = star
        with pytest.raises(ConfigurationError):
            install_name_service(clients[0])

    def test_bind_without_name_service_fails(self):
        system = repro.make_system(seed=3)
        ctx = system.add_node("n").create_context("m")
        with pytest.raises(BindError):
            name_service_proxy(ctx)

    def test_primordial_proxy_needs_no_messages(self, star):
        system, server, clients = star
        with MessageWindow(system) as window:
            name_service_proxy(clients[0])
        assert window.report.messages == 0

    def test_home_context_gets_real_name_service(self, star):
        system, server, clients = star
        assert isinstance(name_service_proxy(server), NameService)

    def test_remote_context_gets_proxy(self, star):
        system, server, clients = star
        assert is_proxy(name_service_proxy(clients[0]))

    def test_bind_returns_service_chosen_policy(self, star):
        system, server, clients = star
        repro.register(server, "kv", CachedKVStore())
        proxy = repro.bind(clients[0], "kv")
        assert isinstance(proxy, CachingProxy)

    def test_bind_unknown_name_raises_keyerror(self, star):
        system, server, clients = star
        with pytest.raises(KeyError):
            repro.bind(clients[0], "nothing-here")

    def test_register_from_remote_context(self, star):
        """A client can register its own service with the remote registry."""
        system, server, clients = star
        local_store = KVStore()
        repro.register(clients[0], "client-kv", local_store)
        proxy = repro.bind(clients[1], "client-kv")
        proxy.put("k", "v")
        assert local_store.data["k"] == "v"
        assert proxy.proxy_ref.context_id == clients[0].context_id

    def test_unregister_via_facade(self, star):
        system, server, clients = star
        repro.register(server, "kv", KVStore())
        assert unregister(clients[0], "kv") is True
        with pytest.raises(KeyError):
            repro.bind(clients[0], "kv")

    def test_lookup_after_migration_finds_object(self, star):
        """The registry stays valid when the registered object migrates."""
        from repro.apps.counter import MigratingCounter
        system, server, clients = star
        repro.register(server, "ctr", MigratingCounter())
        mover = repro.bind(clients[0], "ctr")
        for _ in range(6):
            mover.incr()
        assert mover.proxy_is_local
        late = repro.bind(clients[1], "ctr")
        assert late.incr() == 7

    def test_proxies_can_be_registered(self, star):
        system, server, clients = star
        store = KVStore()
        repro.register(server, "kv", store)
        proxy = repro.bind(clients[0], "kv")
        repro.register(clients[0], "kv-alias", proxy)
        alias = repro.bind(clients[1], "kv-alias")
        alias.put("via-alias", 1)
        assert store.data["via-alias"] == 1


class TestDirectories:
    def test_directory_bind_and_lookup(self):
        directory = DirectoryService("/")
        directory.bind_entry("a", "target")
        assert directory.lookup_entry("a") == "target"
        assert directory.list_entries() == ["a"]

    def test_invalid_component_rejected(self):
        directory = DirectoryService("/")
        with pytest.raises(ValueError):
            directory.bind_entry("a/b", "x")
        with pytest.raises(ValueError):
            directory.bind_entry("", "x")

    def test_unbind(self):
        directory = DirectoryService("/")
        directory.bind_entry("a", 1)
        assert directory.unbind_entry("a") is True
        assert directory.unbind_entry("a") is False

    def test_cross_context_resolution(self, star):
        system, server, clients = star
        target = KVStore()
        get_space(server).export(target)
        root = make_directory_tree(clients[0], depth=3, leaf_target=target,
                                   contexts=[server, clients[1], clients[2]])
        leaf = resolve(clients[0], root, "d1/d2/leaf")
        leaf.put("deep", "found")
        assert target.data["deep"] == "found"

    def test_name_service_is_itself_replicable(self, star):
        """Uniformity, taken seriously: the registry is just a service, so
        it can be deployed under the replicated policy like any other."""
        from repro.core.policies.replicating import replicate
        from repro.naming.service import NameService
        system, server, clients = star
        group_ref = replicate([server, clients[1]], NameService,
                              write_quorum=2)
        registry = get_space(clients[0]).bind_ref(group_ref)
        store = KVStore()
        get_space(clients[2]).export(store)
        target = get_space(clients[0]).bind_ref(
            get_space(clients[2]).ref_of(store), handshake=False)
        registry.register("replicated-entry", target)
        # The primary registry host dies; lookups keep answering.
        server.node.crash()
        found = registry.lookup("replicated-entry")
        found.put("via-replica", 1)
        assert store.data == {"via-replica": 1}
        server.node.restart()

    def test_resolution_cost_grows_with_depth(self, star):
        system, server, clients = star
        shallow_target = KVStore()
        get_space(server).export(shallow_target)
        root1 = make_directory_tree(clients[0], 1, leaf_target=shallow_target,
                                    contexts=[server])
        with MessageWindow(system) as window:
            resolve(clients[0], root1, "leaf")
        shallow = window.report.messages
        deep_target = KVStore()
        get_space(server).export(deep_target)
        root4 = make_directory_tree(clients[0], 4, leaf_target=deep_target,
                                    contexts=[server, clients[1], clients[2]])
        with MessageWindow(system) as window:
            resolve(clients[0], root4, "d1/d2/d3/leaf")
        assert window.report.messages > shallow
