"""Property tests: the proxy principle survives arbitrary system activity.

Random sequences of export / register / bind / invoke / migrate / crash /
restart actions must never leave any context holding a raw foreign
reference: the audit stays clean throughout.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.core.principle import audit
from repro.kernel.errors import ReproError
from repro.naming.bootstrap import install_name_service

NUM_CONTEXTS = 4

actions = st.lists(
    st.one_of(
        st.tuples(st.just("register"), st.integers(0, NUM_CONTEXTS - 1),
                  st.sampled_from(["stub", "caching", "migrating"])),
        st.tuples(st.just("bind"), st.integers(0, NUM_CONTEXTS - 1),
                  st.integers(0, 5)),
        st.tuples(st.just("invoke"), st.integers(0, NUM_CONTEXTS - 1),
                  st.integers(0, 5), st.sampled_from(["get", "put"])),
        st.tuples(st.just("crash"), st.integers(0, NUM_CONTEXTS - 1)),
        st.tuples(st.just("restart"), st.integers(0, NUM_CONTEXTS - 1)),
        st.tuples(st.just("pass_ref"), st.integers(0, NUM_CONTEXTS - 1),
                  st.integers(0, 5)),
    ),
    max_size=30,
)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=actions)
def test_audit_stays_clean_under_random_activity(script):
    system = repro.make_system(seed=31)
    contexts = [system.add_node(f"n{i}").create_context("m")
                for i in range(NUM_CONTEXTS)]
    install_name_service(contexts[0])
    registered = 0
    proxies: dict[int, list] = {index: [] for index in range(NUM_CONTEXTS)}

    for action in script:
        kind = action[0]
        try:
            if kind == "register":
                _, who, policy = action
                store = KVStore()
                get_space(contexts[who]).export(store, policy=policy)
                repro.register(contexts[who], f"svc{registered}", store)
                registered += 1
            elif kind == "bind" and registered:
                _, who, which = action
                proxy = repro.bind(contexts[who],
                                   f"svc{which % registered}")
                proxies[who].append(proxy)
            elif kind == "invoke":
                _, who, which, verb = action
                mine = proxies[who]
                if mine:
                    target = mine[which % len(mine)]
                    if verb == "get":
                        target.get("k")
                    else:
                        target.put("k", which)
            elif kind == "crash":
                contexts[action[1]].node.crash()
            elif kind == "restart":
                contexts[action[1]].node.restart()
            elif kind == "pass_ref" and registered:
                _, who, which = action
                mine = proxies[who]
                if mine:
                    # Pass a proxy as an argument to another service:
                    # it must re-proxy (or come home) on the far side.
                    target = mine[which % len(mine)]
                    carrier = mine[(which + 1) % len(mine)]
                    carrier.put("carried", target)
        except ReproError:
            pass  # crashes/timeouts are expected; invariants must still hold
        except KeyError:
            pass

    for node in system.nodes.values():
        node.restart()
    report = audit(system)
    assert report.clean, report.violations


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=actions, seed=st.integers(0, 2**16))
def test_runs_are_reproducible(script, seed):
    """The same script and seed produce the identical trace."""
    def run():
        system = repro.make_system(seed=seed)
        contexts = [system.add_node(f"n{i}").create_context("m")
                    for i in range(NUM_CONTEXTS)]
        install_name_service(contexts[0])
        store = KVStore()
        repro.register(contexts[0], "svc", store)
        proxy = repro.bind(contexts[1], "svc")
        for action in script:
            try:
                if action[0] == "invoke":
                    proxy.put("k", action[1])
            except ReproError:
                pass
        return [(ev.time, ev.kind, ev.src, ev.dst, ev.size)
                for ev in system.trace]

    assert run() == run()
