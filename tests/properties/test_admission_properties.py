"""Properties of the admission stack: conservation, bounds, FIFO drain.

The token bucket and run queue are the load-bearing arithmetic of the
overload stack — a fencepost in either turns "say no early" into "admit
everything slowly" (or worse, deny service while idle).  These properties
pin the invariants under *any* deterministic schedule hypothesis can draw:

* a bounded queue's depth never exceeds its capacity;
* tokens are conserved — consumption never outruns the burst plus accrual,
  regardless of how refusals and takes interleave;
* admitted work drains in FIFO order through the busy line;
* a bulkhead is a partition of the node's capacity: compartment shares
  must sum to it exactly, and in-flight totals respect each share.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.kernel.admission import AdmissionControl, RunQueue, TokenBucket
from repro.kernel.clock import BusyLine
from repro.kernel.errors import ConfigurationError

#: A schedule step: inter-arrival gap plus whether the admitted job's
#: finish is recorded ``service`` later (the dispatcher always does; the
#: split lets the property cover still-running work too).
_steps = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=0.5),
              st.booleans()),
    min_size=1, max_size=60)


@settings(max_examples=100, deadline=None)
@given(capacity=st.integers(1, 8), service=st.floats(0.01, 0.3),
       steps=_steps)
def test_queue_depth_never_exceeds_capacity(capacity, service, steps):
    queue = RunQueue(capacity)
    now = 0.0
    for gap, record_finish in steps:
        now += gap
        assert queue.depth(now) <= capacity
        if queue.offer(now) and record_finish:
            queue.finish(now + service)
        assert queue.depth(now) <= capacity


@settings(max_examples=100, deadline=None)
@given(rate=st.floats(0.5, 50.0), burst=st.floats(1.0, 10.0),
       steps=_steps)
def test_tokens_are_conserved(rate, burst, steps):
    bucket = TokenBucket(rate, burst)
    now, taken = 0.0, 0
    for gap, peek_first in steps:
        now += gap
        if peek_first:
            hint = bucket.refusal(now)
            if hint is not None:
                assert hint > now
                continue    # a refusal consumes nothing (checked below)
        if bucket.take(now):
            taken += 1
        level = bucket.available(now)
        assert 0.0 <= level <= burst
        # Conservation: everything consumed came from the initial burst
        # plus linear accrual — refusals and peeks minted nothing.
        assert taken <= burst + rate * now + 1e-9


@settings(max_examples=100, deadline=None)
@given(arrivals=st.lists(st.floats(0.0, 2.0), min_size=1, max_size=40),
       service=st.floats(0.01, 0.2))
def test_admitted_work_drains_fifo(arrivals, service):
    """The busy line is a FIFO server: in arrival order, each admitted
    job starts at ``max(arrive, previous end)`` and starts never regress."""
    line = BusyLine()
    times = sorted(arrivals)
    previous_end = 0.0
    previous_start = 0.0
    for arrive in times:
        start, end = line.occupy(arrive, service)
        assert start == max(arrive, previous_end)
        assert start >= previous_start
        assert end == start + service
        previous_start, previous_end = start, end


@settings(max_examples=60, deadline=None)
@given(shares=st.lists(st.integers(1, 6), min_size=1, max_size=4),
       default_share=st.integers(1, 6))
def test_bulkhead_shares_sum_to_node_capacity(shares, default_share):
    compartments = {f"c{i}": share for i, share in enumerate(shares)}
    compartments["*"] = default_share
    capacity = sum(compartments.values())
    control = AdmissionControl(capacity=capacity,
                               bulkhead=dict(compartments))
    # The exact partition is accepted; any off-by-one total is refused.
    with pytest.raises(ConfigurationError):
        AdmissionControl(capacity=capacity + 1,
                         bulkhead=dict(compartments))
    # Per-compartment admission respects each share, and the in-flight
    # total therefore never exceeds the node capacity.
    admitted = 0
    for name, share in compartments.items():
        target = f"svc-{name}"
        control.assign(target, name)
        for _ in range(share + 2):
            if control.admit(target, 0.0) is None:
                admitted += 1
        assert control.depth(target, 0.0) == share
    assert admitted == capacity
