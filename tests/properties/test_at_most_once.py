"""Property: at-most-once execution survives lossy links and backoff retries.

Birrell–Nelson retransmission plus the server-side replay cache must keep
every increment from executing twice, no matter how aggressively the retry
engine resends under message loss.  The counter's final value is therefore
bracketed: at least one execution per call the client saw succeed, at most
one per call attempted.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.apps.counter import Counter
from repro.failures.injectors import message_loss
from repro.kernel.errors import DistributionError
from repro.naming.bootstrap import bind, install_name_service, register
from repro.resilience.retry import RetryPolicy


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16),
       loss=st.sampled_from([0.1, 0.3, 0.5]),
       attempts=st.integers(2, 6))
def test_counter_never_double_executes(seed, loss, attempts):
    system = repro.make_system(seed=seed)
    server = system.add_node("server").create_context("main")
    client = system.add_node("client").create_context("main")
    install_name_service(server)
    counter = Counter()
    register(server, "ctr", counter)
    proxy = bind(client, "ctr")
    system.rpc.retry_policy = RetryPolicy.exponential(
        attempts=attempts, multiplier=2.0, jitter=0.1)

    calls, successes = 12, 0
    with message_loss(system, loss):
        for _ in range(calls):
            try:
                proxy.incr()
            except DistributionError:
                continue
            successes += 1

    # Every acknowledged call executed exactly once; an unacknowledged call
    # may still have executed (the reply was lost), but never more than once.
    assert successes <= counter.value <= calls
    dispatcher = server.handler.__self__
    retransmissions = system.rpc.stats["retries"]
    duplicates = dispatcher.stats["duplicates"]
    assert duplicates <= retransmissions, \
        "only a retransmitted request can hit the replay cache"
