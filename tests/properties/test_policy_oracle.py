"""Property tests: every proxy policy is observably a plain dictionary.

The strongest form of the encapsulation claim: for ANY sequence of
put/get/delete operations, a client talking through ANY policy observes
exactly what an in-memory dict oracle predicts.  Caching, batching,
migration, and replication may only change the *cost*, never the answers.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.core.policies.replicating import replicate
from repro.naming.bootstrap import install_name_service

KEYS = [f"key{i}" for i in range(6)]

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS),
                  st.integers(-100, 100)),
        st.tuples(st.just("get"), st.sampled_from(KEYS)),
        st.tuples(st.just("delete"), st.sampled_from(KEYS)),
    ),
    max_size=40,
)


def build(policy: str):
    system = repro.make_system(seed=7)
    contexts = [system.add_node(f"n{i}").create_context("m") for i in range(3)]
    install_name_service(contexts[0])
    if policy == "replicated":
        ref = replicate(contexts[:2], KVStore, write_quorum=2)
    else:
        store = KVStore()
        ref = get_space(contexts[0]).export(store, policy=policy)
    proxy = get_space(contexts[2]).bind_ref(ref)
    return system, proxy


def run_script(proxy, script) -> list:
    """Apply a script through the proxy, with a dict oracle alongside."""
    oracle: dict = {}
    observations = []
    for step in script:
        if step[0] == "put":
            _, key, value = step
            proxy.put(key, value)
            oracle[key] = value
        elif step[0] == "delete":
            _, key = step
            proxy.delete(key)
            oracle.pop(key, None)
        else:
            _, key = step
            observations.append((proxy.get(key), oracle.get(key)))
    return observations


@pytest.mark.parametrize("policy",
                         ["stub", "caching", "batching", "migrating",
                          "replicated"])
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=ops)
def test_policy_matches_oracle(policy, script):
    system, proxy = build(policy)
    for observed, expected in run_script(proxy, script):
        assert observed == expected
    repro.assert_principle(system)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=ops, loss=st.sampled_from([0.05, 0.15, 0.25]))
def test_oracle_holds_under_message_loss(script, loss):
    """Retries + at-most-once keep the oracle exact even on a lossy net."""
    from repro.failures.injectors import message_loss
    system, proxy = build("stub")
    with message_loss(system, loss):
        for observed, expected in run_script(proxy, script):
            assert observed == expected


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=ops)
def test_two_clients_one_oracle_sequential(script):
    """Two clients alternating operations still match a single oracle
    (sequential consistency for non-overlapping, interleaved turns)."""
    system = repro.make_system(seed=11)
    contexts = [system.add_node(f"n{i}").create_context("m") for i in range(3)]
    install_name_service(contexts[0])
    store = KVStore()
    ref = get_space(contexts[0]).export(store, policy="caching")
    proxies = [get_space(ctx).bind_ref(ref) for ctx in contexts[1:]]
    oracle: dict = {}
    for index, step in enumerate(script):
        proxy = proxies[index % 2]
        if step[0] == "put":
            _, key, value = step
            proxy.put(key, value)
            oracle[key] = value
        elif step[0] == "delete":
            _, key = step
            proxy.delete(key)
            oracle.pop(key, None)
        else:
            _, key = step
            assert proxy.get(key) == oracle.get(key)
