"""Property tests for event channels: delivery, ordering, recovery."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.events import EventChannel, EventSubscriber, topic_matches
from repro.failures.injectors import message_loss
from repro.kernel.errors import RpcTimeout
from repro.naming.bootstrap import install_name_service

TOPICS = ["a", "a/x", "a/y", "b", "b/z"]

publishes = st.lists(
    st.tuples(st.sampled_from(TOPICS), st.integers(0, 99)),
    max_size=30,
)


def build(patterns):
    system = repro.make_system(seed=17)
    hub = system.add_node("hub").create_context("m")
    sub_ctx = system.add_node("sub").create_context("m")
    pub_ctx = system.add_node("pub").create_context("m")
    install_name_service(hub)
    repro.register(hub, "bus", EventChannel())
    subscriber = EventSubscriber(sub_ctx, repro.bind(sub_ctx, "bus"),
                                 patterns)
    publisher = repro.bind(pub_ctx, "bus")
    return system, subscriber, publisher


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=publishes)
def test_reliable_network_delivers_exactly_matching_events(script):
    system, subscriber, publisher = build(["a/*"])
    expected = []
    for topic, payload in script:
        seq = publisher.publish(topic, payload)
        if topic_matches("a/*", topic):
            expected.append((seq, topic, payload))
    assert subscriber.ordered_events() == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=publishes, loss=st.sampled_from([0.2, 0.4, 0.6]))
def test_catch_up_always_converges(script, loss):
    """Whatever is lost on the push path, replay completes the view."""
    system, subscriber, publisher = build(["a/*", "b/*", "a", "b"])
    with message_loss(system, loss):
        for topic, payload in script:
            try:
                publisher.publish(topic, payload)
            except RpcTimeout:
                pass
    subscriber.catch_up()
    published = publisher.replay(["a/*", "b/*", "a", "b"], 0)
    assert [list(event) for event in subscriber.ordered_events()] == published
    assert not subscriber.gaps()


@settings(max_examples=40, deadline=None)
@given(script=publishes)
def test_sequence_numbers_strictly_increase(script):
    system, subscriber, publisher = build(["a/*"])
    seqs = [publisher.publish(topic, payload) for topic, payload in script]
    assert seqs == sorted(set(seqs))
