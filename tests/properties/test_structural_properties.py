"""Property tests on structural machinery: conformance, delegates, views,
composite equivalence, persistence capsules."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.iface.adapters import make_delegate
from repro.iface.conformance import conforms
from repro.iface.interface import Interface, Operation
from repro.naming.bootstrap import install_name_service

# -- random interfaces ----------------------------------------------------------

op_names = st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"])
operations = st.builds(
    Operation,
    name=op_names,
    params=st.lists(st.sampled_from(["a", "b", "c"]),
                    max_size=3, unique=True).map(tuple),
    readonly=st.booleans(),
)


@st.composite
def interfaces(draw):
    ops = draw(st.lists(operations, min_size=1, max_size=5,
                        unique_by=lambda op: op.name))
    name = draw(st.sampled_from(["I", "J", "K"]))
    return Interface(name, ops)


@settings(max_examples=100, deadline=None)
@given(interfaces())
def test_conformance_is_reflexive(iface):
    assert conforms(iface, iface)


@settings(max_examples=100, deadline=None)
@given(interfaces(), interfaces(), interfaces())
def test_conformance_is_transitive(a, b, c):
    if conforms(a, b) and conforms(b, c):
        assert conforms(a, c)


@settings(max_examples=100, deadline=None)
@given(interfaces())
def test_subset_view_always_conformed_to(iface):
    """Every interface conforms to any view made of its own operations."""
    names = sorted(iface.operations)[:max(1, len(iface.operations) // 2)]
    view = Interface("View", [iface.operation(name) for name in names])
    assert conforms(iface, view)


@settings(max_examples=60, deadline=None)
@given(interfaces())
def test_delegate_always_implements(iface):
    """A generated delegate structurally implements its interface."""
    from repro.iface.conformance import check_implements

    class Target:
        def __getattr__(self, name):
            return lambda *args, **kwargs: (name, args)

    delegate = make_delegate(Target(), iface)
    check_implements(delegate, iface)
    derived = Interface.of(type(delegate))
    assert conforms(derived, iface)
    assert conforms(iface, derived)


# -- composite equivalence ---------------------------------------------------------

SCRIPT_KEYS = ["k0", "k1", "k2"]
scripts = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(SCRIPT_KEYS),
                  st.integers(0, 9)),
        st.tuples(st.just("get"), st.sampled_from(SCRIPT_KEYS)),
    ),
    max_size=25,
)


def _observe(proxy, script):
    out = []
    for step in script:
        if step[0] == "put":
            proxy.put(step[1], step[2])
        else:
            out.append(proxy.get(step[1]))
    return out


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=scripts)
def test_composite_equals_plain_stack(script):
    """tracing∘caching observes exactly what plain caching observes."""
    def build(policy, config):
        system = repro.make_system(seed=3)
        server = system.add_node("s").create_context("m")
        client = system.add_node("c").create_context("m")
        install_name_service(server)
        store = KVStore()
        get_space(server).export(store, policy=policy, config=config)
        repro.register(server, "kv", store)
        return repro.bind(client, "kv")

    plain = build("caching", {"invalidation": True})
    stacked = build("composite",
                    {"layers": ["tracing", "caching"],
                     "layer_configs": {"tracing": {"report_every": 10**6},
                                       "caching": {"invalidation": True}}})
    assert _observe(plain, script) == _observe(stacked, script)


# -- persistence capsules --------------------------------------------------------------

kv_states = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(), st.text(max_size=16), st.booleans()),
    max_size=10,
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(state=kv_states)
def test_checkpoint_recover_roundtrips_any_state(state):
    from repro.persistence import PersistenceManager, crash_node, recover_context
    system = repro.make_system(seed=4)
    server = system.add_node("s").create_context("m")
    client = system.add_node("c").create_context("m")
    install_name_service(server)
    store = KVStore()
    store.data.update(state)
    repro.register(server, "kv", store)
    proxy = repro.bind(client, "kv")
    PersistenceManager(get_space(server)).checkpoint(store)
    crash_node(server.node)
    server.node.restart()
    recover_context(server)
    for key, value in state.items():
        assert proxy.get(key) == value
    repro.assert_principle(system)
