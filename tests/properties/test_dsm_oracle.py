"""Property tests for DSM coherence: any access pattern matches an oracle.

Single-writer/multiple-reader invalidation must make the shared heap behave
exactly like one flat array, no matter which context touches which slot in
which order — plus structural invariants on the directory itself.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.dsm.coherence import CoherenceProtocol
from repro.dsm.heap import SharedHeap
from repro.dsm.pages import Mode, SharedRegion

NUM_CONTEXTS = 3
NUM_SLOTS = 24

accesses = st.lists(
    st.tuples(
        st.integers(0, NUM_CONTEXTS - 1),             # which context
        st.sampled_from(["read", "write"]),
        st.integers(0, NUM_SLOTS - 1),                 # which slot
        st.integers(-50, 50),                          # value (writes)
    ),
    max_size=60,
)


def build():
    system = repro.make_system(seed=21)
    contexts = [system.add_node(f"n{i}").create_context("m")
                for i in range(NUM_CONTEXTS)]
    region = SharedRegion("r", contexts[0], num_pages=4, slots_per_page=8)
    for ctx in contexts[1:]:
        region.attach(ctx)
    protocol = CoherenceProtocol(region)
    heap = SharedHeap(region, protocol)
    heap.alloc(NUM_SLOTS)
    return system, contexts, region, protocol, heap


def check_directory_invariants(region):
    """Single-writer, consistent copies, owner always has a copy."""
    for page, state in region.directory.items():
        writers = [cid for cid, cache in region.caches.items()
                   if cache.mode(page) is Mode.WRITE]
        assert len(writers) <= 1, f"page {page}: multiple writers {writers}"
        if writers:
            assert writers[0] == state.owner
            assert not state.copies, \
                f"page {page}: write copy coexists with read copies"
        owner_cache = region.caches.get(state.owner)
        assert owner_cache is not None
        assert owner_cache.mode(page) is not Mode.NONE, \
            f"page {page}: owner holds no copy"
        for holder in state.copies:
            assert region.caches[holder].mode(page) is Mode.READ


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=accesses)
def test_dsm_matches_flat_array(script):
    system, contexts, region, protocol, heap = build()
    oracle = [None] * NUM_SLOTS
    for who, kind, slot, value in script:
        ctx = contexts[who]
        if kind == "write":
            heap.write(ctx, slot, value)
            oracle[slot] = value
        else:
            assert heap.read(ctx, slot) == oracle[slot]
    check_directory_invariants(region)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=accesses)
def test_directory_invariants_hold_at_every_step(script):
    system, contexts, region, protocol, heap = build()
    for who, kind, slot, value in script:
        ctx = contexts[who]
        if kind == "write":
            heap.write(ctx, slot, value)
        else:
            heap.read(ctx, slot)
        check_directory_invariants(region)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=accesses)
def test_virtual_time_is_monotonic_per_context(script):
    system, contexts, region, protocol, heap = build()
    last = {ctx.context_id: ctx.now for ctx in contexts}
    for who, kind, slot, value in script:
        ctx = contexts[who]
        if kind == "write":
            heap.write(ctx, slot, value)
        else:
            heap.read(ctx, slot)
        assert ctx.now >= last[ctx.context_id]
        last[ctx.context_id] = ctx.now
