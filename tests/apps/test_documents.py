"""Tests for the collaborative document service."""

import pytest

import repro
from repro.apps.documents import DocumentStore
from repro.core.export import get_space
from repro.metrics.counters import MessageWindow


class TestDocumentStoreUnit:
    @pytest.fixture
    def docs(self):
        store = DocumentStore()
        store.create_document("spec")
        return store

    def test_create_and_list(self, docs):
        assert docs.list_documents() == ["spec"]
        assert docs.create_document("spec") is False
        assert docs.create_document("notes") is True
        assert docs.list_documents() == ["notes", "spec"]

    def test_missing_document_raises(self, docs):
        with pytest.raises(KeyError):
            docs.outline("ghost")

    def test_edit_and_read(self, docs):
        version = docs.edit_section("spec", "intro", "Hello.", 0, "ada")
        assert version == 1
        assert docs.read_section("spec", "intro") == ["Hello.", 1, "ada"]
        assert docs.outline("spec") == ["intro"]

    def test_version_conflict_rejected(self, docs):
        docs.edit_section("spec", "intro", "v1 text", 0, "ada")
        with pytest.raises(ValueError):
            docs.edit_section("spec", "intro", "clobber", 0, "bob")
        assert docs.read_section("spec", "intro")[0] == "v1 text"

    def test_sequential_edits_bump_versions(self, docs):
        docs.edit_section("spec", "intro", "one", 0, "ada")
        docs.edit_section("spec", "intro", "two", 1, "bob")
        assert docs.read_section("spec", "intro") == ["two", 2, "bob"]

    def test_delete_section(self, docs):
        docs.edit_section("spec", "intro", "x", 0, "ada")
        assert docs.delete_section("spec", "intro") is True
        assert docs.delete_section("spec", "intro") is False
        assert docs.read_section("spec", "intro") == ["", 0, ""]

    def test_render_and_word_count(self, docs):
        docs.edit_section("spec", "a-intro", "three small words", 0, "ada")
        docs.edit_section("spec", "b-body", "two words", 0, "bob")
        rendered = docs.render("spec")
        assert rendered.index("a-intro") < rendered.index("b-body")
        assert "(v1, ada)" in rendered
        assert docs.word_count("spec") == 5

    def test_migration_capsule(self, docs):
        docs.edit_section("spec", "intro", "persist me", 0, "ada")
        clone = DocumentStore.from_migration_state(docs.migrate_state())
        assert clone.read_section("spec", "intro") == ["persist me", 1, "ada"]


class TestCollaboration:
    @pytest.fixture
    def office(self, star):
        system, server, clients = star
        store = DocumentStore()
        repro.register(server, "docs", store)
        editors = [repro.bind(ctx, "docs") for ctx in clients]
        editors[0].create_document("plan")
        return system, store, editors

    def test_concurrent_editors_cannot_clobber(self, office):
        system, store, editors = office
        ada, bob = editors[0], editors[1]
        ada.edit_section("plan", "goals", "ship it", 0, "ada")
        __, version, __ = bob.read_section("plan", "goals")
        ada.edit_section("plan", "goals", "ship it twice", version, "ada")
        with pytest.raises(ValueError):
            bob.edit_section("plan", "goals", "stale edit", version, "bob")
        assert store.read_section("plan", "goals")[0] == "ship it twice"

    def test_reads_are_cached_and_invalidated(self, office):
        system, store, editors = office
        ada, bob = editors[0], editors[1]
        ada.edit_section("plan", "goals", "v1", 0, "ada")
        assert bob.read_section("plan", "goals")[0] == "v1"
        with MessageWindow(system) as window:
            bob.read_section("plan", "goals")
        assert window.report.messages == 0, "second read from cache"
        ada.edit_section("plan", "goals", "v2", 1, "ada")
        assert bob.read_section("plan", "goals")[0] == "v2", \
            "edit must invalidate bob's cached section"

    def test_outline_cache_tracks_structure(self, office):
        system, store, editors = office
        ada, bob = editors[0], editors[1]
        bob.outline("plan")
        ada.edit_section("plan", "new-section", "text", 0, "ada")
        assert "new-section" in bob.outline("plan")

    def test_document_survives_crash_with_checkpoint(self, office):
        from repro.persistence import (PersistenceManager, crash_node,
                                       recover_context)
        system, store, editors = office
        server_ctx = system.context("server/main")
        editors[0].edit_section("plan", "goals", "durable", 0, "ada")
        PersistenceManager(get_space(server_ctx)).checkpoint(store)
        crash_node(server_ctx.node)
        server_ctx.node.restart()
        recover_context(server_ctx)
        assert editors[1].read_section("plan", "goals")[0] == "durable"
