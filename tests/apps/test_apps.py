"""Tests for the example services, both direct and through proxies."""

import pytest

import repro
from repro.apps.counter import Counter, StatsAccumulator
from repro.apps.files import BlockFileService, FileService
from repro.apps.kv import CachedKVStore, KVStore
from repro.apps.mailbox import Mailbox


class TestKVStore:
    def test_basic_operations(self):
        store = KVStore()
        assert store.get("a") is None
        store.put("a", 1)
        assert store.get("a") == 1
        assert store.contains("a")
        assert store.size() == 1
        assert store.delete("a") is True
        assert store.delete("a") is False

    def test_prefix_listing(self):
        store = KVStore()
        for key in ("u/1", "u/2", "v/1"):
            store.put(key, key)
        assert store.keys_with_prefix("u/") == ["u/1", "u/2"]

    def test_interface_metadata(self):
        iface = KVStore.interface()
        assert iface.operation("get").readonly
        assert iface.operation("put").invalidates == ("key",)
        assert not iface.operation("put").readonly

    def test_cached_variant_differs_only_in_policy(self):
        assert CachedKVStore.default_policy == "caching"
        assert KVStore.interface().names() == \
            [name for name in CachedKVStore.interface().names()]


class TestFileService:
    def test_write_read(self):
        files = FileService()
        assert files.write_file("/a.txt", b"hello") == 5
        assert files.read_file("/a.txt") == b"hello"

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            FileService().read_file("/ghost")
        with pytest.raises(FileNotFoundError):
            FileService().stat("/ghost")

    def test_stat_and_list(self):
        files = FileService()
        files.write_file("/d/a", b"xx")
        files.write_file("/d/b", b"yyy")
        assert files.stat("/d/b")["size"] == 3
        assert files.list_files("/d/") == ["/d/a", "/d/b"]

    def test_delete(self):
        files = FileService()
        files.write_file("/a", b"1")
        assert files.delete_file("/a") is True
        assert files.delete_file("/a") is False


class TestBlockFileService:
    def test_block_roundtrip(self):
        files = BlockFileService(block_size=4)
        files.write_block("/f", 0, b"abcd")
        files.write_block("/f", 1, b"ef")
        assert files.read_block("/f", 0) == b"abcd"
        assert files.read_block("/f", 1) == b"ef"
        assert files.file_length("/f") == 6

    def test_oversized_block_truncated(self):
        files = BlockFileService(block_size=4)
        files.write_block("/f", 0, b"abcdefgh")
        assert files.read_block("/f", 0) == b"abcd"

    def test_hole_reads_empty(self):
        files = BlockFileService()
        files.write_block("/f", 2, b"z")
        assert files.read_block("/f", 0) == b""

    def test_truncate(self):
        files = BlockFileService()
        files.write_block("/f", 0, b"data")
        assert files.truncate("/f") is True
        with pytest.raises(FileNotFoundError):
            files.file_length("/f")

    def test_remote_block_file_via_proxy(self, pair):
        system, server, client = pair
        repro.register(server, "files", BlockFileService())
        files = repro.bind(client, "files")
        files.write_block("/big", 0, b"block0")
        assert files.read_block("/big", 0) == b"block0"
        # Cache hit on re-read: the caching policy is the class default.
        before = client.now
        files.read_block("/big", 0)
        assert client.now - before < system.costs.remote_latency


class TestMailbox:
    def test_post_fetch(self):
        box = Mailbox()
        box.post("alice", "hi")
        box.post("bob", "yo")
        assert box.count() == 2
        assert box.fetch(0, 10) == [["alice", "hi"], ["bob", "yo"]]
        assert box.fetch(1, 1) == [["bob", "yo"]]

    def test_capacity_drops_oldest(self):
        box = Mailbox(capacity=2)
        for index in range(4):
            box.post("s", f"m{index}")
        assert [body for _, body in box._messages] == ["m2", "m3"]

    def test_drain(self):
        box = Mailbox()
        box.post("a", "x")
        assert box.drain() == 1
        assert box.count() == 0


class TestCounters:
    def test_counter_arithmetic(self):
        counter = Counter(10)
        assert counter.incr() == 11
        assert counter.incr(5) == 16
        assert counter.decr(6) == 10
        assert counter.read() == 10
        assert counter.reset() == 10
        assert counter.read() == 0

    def test_stats_accumulator(self):
        acc = StatsAccumulator()
        for value in (1.0, 2.0, 3.0):
            acc.observe(value)
        summary = acc.summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_empty_accumulator_summary(self):
        summary = StatsAccumulator().summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
