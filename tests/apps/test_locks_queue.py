"""Tests for the lock service and the work queue."""

import pytest

import repro
from repro.apps.locks import LockService
from repro.apps.queue import WorkQueue


class TestLockService:
    def test_acquire_release(self):
        locks = LockService()
        assert locks.try_acquire("m", "alice") is True
        assert locks.holder("m") == "alice"
        assert locks.release("m", "alice") == ""
        assert locks.holder("m") == ""

    def test_contention(self):
        locks = LockService()
        locks.try_acquire("m", "alice")
        assert locks.try_acquire("m", "bob") is False

    def test_reentrant_for_same_owner(self):
        locks = LockService()
        locks.try_acquire("m", "alice")
        assert locks.try_acquire("m", "alice") is True

    def test_fifo_handoff(self):
        locks = LockService()
        locks.try_acquire("m", "alice")
        assert locks.enqueue("m", "bob") == 0
        assert locks.enqueue("m", "carol") == 1
        assert locks.release("m", "alice") == "bob"
        assert locks.holder("m") == "bob"
        assert locks.release("m", "bob") == "carol"

    def test_release_without_holding_rejected(self):
        locks = LockService()
        with pytest.raises(PermissionError):
            locks.release("m", "impostor")

    def test_distributed_mutual_exclusion(self, star):
        system, server, clients = star
        repro.register(server, "locks", LockService())
        proxies = [repro.bind(ctx, "locks") for ctx in clients]
        grabbed = [proxy.try_acquire("resource", f"c{i}")
                   for i, proxy in enumerate(proxies)]
        assert grabbed == [True, False, False], "exactly one winner"
        assert proxies[1].holder("resource") == "c0"

    def test_remote_error_propagates(self, pair):
        system, server, client = pair
        repro.register(server, "locks", LockService())
        proxy = repro.bind(client, "locks")
        with pytest.raises(PermissionError):
            proxy.release("m", "nobody")


class TestWorkQueue:
    def test_fifo_order(self):
        queue = WorkQueue()
        queue.submit("t1")
        queue.submit("t2")
        assert queue.take("w")[1] == "t1"
        assert queue.take("w")[1] == "t2"
        assert queue.take("w") is None

    def test_ack_lifecycle(self):
        queue = WorkQueue()
        task_id = queue.submit("job")
        taken_id, _ = queue.take("w")
        assert taken_id == task_id
        assert queue.ack(taken_id) is True
        assert queue.ack(taken_id) is False
        assert queue.stats() == {"pending": 0, "in_flight": 0, "done": 1}

    def test_requeue_dead_worker(self):
        queue = WorkQueue()
        queue.submit("a")
        queue.submit("b")
        queue.take("w1")
        queue.take("w1")
        assert queue.requeue_worker("w1") == 2
        assert queue.depth() == 2
        # Requeued tasks keep their original ids and order.
        assert queue.take("w2")[1] == "a"

    def test_distributed_producers_consumers(self, star):
        system, server, clients = star
        repro.register(server, "work", WorkQueue())
        producer = repro.bind(clients[0], "work")
        consumer = repro.bind(clients[1], "work")
        # The producer's proxy batches submissions (WorkQueue's default).
        for index in range(10):
            producer.submit(f"task{index}")
        # A read flushes the batch; the consumer drains everything.
        assert producer.depth() == 10
        done = 0
        while True:
            item = consumer.take("worker-1")
            if item is None:
                break
            consumer.ack(item[0])
            done += 1
        assert done == 10
        assert consumer.stats()["done"] == 10

    def test_crash_recovery_flow(self, star):
        system, server, clients = star
        repro.register(server, "work", WorkQueue())
        boss = repro.bind(clients[0], "work")
        worker = repro.bind(clients[1], "work")
        boss.submit("critical")
        boss.depth()                      # flush the batch
        item = worker.take("w-dead")
        assert item[1] == "critical"
        # The worker dies; the boss requeues its in-flight work.
        assert boss.requeue_worker("w-dead") == 1
        survivor = repro.bind(clients[2], "work")
        assert survivor.take("w-alive")[1] == "critical"
