"""Integration: evolution — the third pillar of the paper's object model.

"A distributed system must be capable of changing its functionality in
terms of the introduction of new components, partial system failure or new
software requirements."  These tests exercise the upgrade paths the proxy
principle enables: swapping implementations, extending interfaces, and
changing distribution protocols — under clients that never change.
"""

from __future__ import annotations

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.iface.interface import operation


class KVStoreV2(KVStore):
    """The upgraded service: same interface plus new operations."""

    @operation(readonly=True, compute=5e-6)
    def get_many(self, keys: list) -> list:
        """Batch read — new in v2."""
        return [self.data.get(key) for key in keys]


class TestImplementationUpgrade:
    def test_v2_service_serves_v1_clients(self, star):
        """Re-registering an extended implementation keeps old clients
        working; new clients can use the new operations."""
        system, server, clients = star
        v1 = KVStore()
        repro.register(server, "kv", v1)
        old_client = repro.bind(clients[0], "kv")
        old_client.put("k", 1)

        # Upgrade: carry the state over, register the v2 object.
        v2 = KVStoreV2()
        v2.data.update(v1.data)
        repro.register(server, "kv", v2)

        # The old client still holds its v1 binding; the old export still
        # answers (graceful overlap), and a re-bind gets the new service.
        assert old_client.get("k") == 1
        new_client = repro.bind(clients[1], "kv")
        assert new_client.get_many(["k"]) == [1]

    def test_v1_interface_clients_never_see_v2_ops(self, star):
        """A client that re-binds under the *old* interface cannot reach
        the new operations (interface checking, not duck typing)."""
        from repro.core.views import export_view
        system, server, clients = star
        v2 = KVStoreV2()
        view_ref = export_view(get_space(server), v2, KVStore.interface())
        legacy = get_space(clients[0]).bind_ref(view_ref, handshake=False)
        legacy.put("k", 1)
        from repro.kernel.errors import InterfaceError
        with pytest.raises(InterfaceError):
            legacy.get_many(["k"])


class TestProtocolUpgrade:
    def test_policy_change_requires_no_client_change(self, star):
        """The same deployment switches from stub to caching between two
        generations of binds; client call-sites are identical."""
        system, server, clients = star
        store = KVStore()
        get_space(server).export(store, policy="stub")
        repro.register(server, "kv", store)

        def client_code(proxy):
            proxy.put("x", 42)
            return proxy.get("x")

        assert client_code(repro.bind(clients[0], "kv")) == 42

        # Operations team flips the policy: re-export under caching.
        get_space(server).unexport(store)
        get_space(server).export(store, policy="caching")
        repro.register(server, "kv", store)
        upgraded = repro.bind(clients[1], "kv")
        assert client_code(upgraded) == 42
        from repro.core.policies.caching import CachingProxy
        assert isinstance(upgraded, CachingProxy)

    def test_relocation_is_invisible(self, star):
        """The service moves machines; clients keep calling."""
        system, server, clients = star
        from repro.apps.counter import Counter
        counter = Counter()
        space = get_space(server)
        ref = space.export(counter, policy="migrating")
        repro.register(server, "ctr", counter)
        proxy = repro.bind(clients[0], "ctr")
        proxy.incr()
        # An administrator relocates the object to another machine.
        new_ref = repro.migrate(clients[2], ref, clients[2].context_id)
        assert new_ref.context_id == clients[2].context_id
        assert proxy.incr() == 2, "old binding follows the forwarding pointer"
        late = repro.bind(clients[1], "ctr")
        assert late.incr() == 3


class TestComponentIntroduction:
    def test_new_service_types_join_a_running_system(self, star):
        """New kinds of services (new interfaces, new policies) register
        into a system that has been running — no restart, no recompile."""
        system, server, clients = star
        repro.register(server, "kv", KVStore())
        kv = repro.bind(clients[0], "kv")
        kv.put("bootstrap", True)

        # Later, a team ships an entirely new service type.
        from repro.apps.documents import DocumentStore
        repro.register(clients[1], "docs", DocumentStore())
        docs = repro.bind(clients[0], "docs")
        docs.create_document("readme")
        docs.edit_section("readme", "intro", "new component online", 0, "ops")
        assert docs.word_count("readme") == 3
        repro.assert_principle(system)
