"""Integration: every experiment reproduces the paper's qualitative shape.

These are the assertions EXPERIMENTS.md reports — run here at reduced size
so the suite stays fast.  Absolute numbers are incidental; the *shapes*
(who wins, where crossovers fall) are the reproduction target.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    e1_invocation_matrix,
    e2_caching,
    e3_migration,
    e4_sharing,
    e5_encapsulation,
    e6_bootstrap,
    e7_failures,
    e8_lrpc,
    e9_replication,
    e10_marshalling,
    e11_ablation,
    e12_pipelining,
    e13_persistence,
    e14_transactions,
    e15_weak_dsm,
    e16_events,
    e17_wan_placement,
    e18_fastpath,
)
from repro.bench.render import who_wins


def by(rows, **filters):
    out = [row for row in rows
           if all(row[key] == value for key, value in filters.items())]
    assert out, f"no rows match {filters}"
    return out


class TestE1InvocationMatrix:
    @pytest.fixture(scope="class")
    def rows(self):
        return e1_invocation_matrix.run(ops=60)

    def test_local_call_is_floor(self, rows):
        local = by(rows, technique="procedure call")[0]["mean_us"]
        assert all(row["mean_us"] >= local for row in rows)

    def test_lrpc_between_local_and_remote(self, rows):
        local = by(rows, technique="procedure call")[0]["mean_us"]
        lrpc = by(rows, technique="lightweight RPC")[0]["mean_us"]
        rpc = by(rows, technique="remote procedure call")[0]["mean_us"]
        assert local <= lrpc < rpc / 10

    def test_proxy_adds_no_meaningful_overhead_over_rpc(self, rows):
        rpc = by(rows, technique="remote procedure call")[0]["mean_us"]
        proxy = by(rows, technique="proxy (stub policy)")[0]["mean_us"]
        assert proxy <= rpc * 1.05

    def test_dsm_steady_state_is_local_speed(self, rows):
        dsm = by(rows, technique="distributed virtual memory")[0]
        rpc = by(rows, technique="remote procedure call")[0]
        assert dsm["mean_us"] < rpc["mean_us"] / 100
        assert dsm["msgs_per_op"] == 0

    def test_remote_rpc_costs_two_messages(self, rows):
        assert by(rows, technique="remote procedure call")[0]["msgs_per_op"] == 2


class TestE2Caching:
    @pytest.fixture(scope="class")
    def rows(self):
        return e2_caching.run(clients=2, ops=60, keys=30)

    def test_caching_wins_read_dominated(self, rows):
        high = [row for row in rows if row["read_ratio"] >= 0.9]
        assert who_wins(high, "policy", "mean_ms") == "caching"

    def test_caching_win_grows_with_read_ratio(self, rows):
        def advantage(ratio):
            stub = by(rows, read_ratio=ratio, policy="stub")[0]["mean_ms"]
            cache = by(rows, read_ratio=ratio, policy="caching")[0]["mean_ms"]
            return stub - cache
        assert advantage(0.99) > advantage(0.5)

    def test_no_win_when_write_only(self, rows):
        stub = by(rows, read_ratio=0.0, policy="stub")[0]["mean_ms"]
        cache = by(rows, read_ratio=0.0, policy="caching")[0]["mean_ms"]
        assert cache >= stub * 0.95, "write-only: caching cannot win"

    def test_hit_rate_rises_with_read_ratio(self, rows):
        cache_rows = by(rows, policy="caching")
        assert cache_rows[-1]["hit_rate"] > cache_rows[0]["hit_rate"]

    def test_caching_saves_messages_at_high_read_ratio(self, rows):
        stub = by(rows, read_ratio=0.99, policy="stub")[0]["messages"]
        cache = by(rows, read_ratio=0.99, policy="caching")[0]["messages"]
        assert cache < stub


class TestE3Migration:
    @pytest.fixture(scope="class")
    def rows(self):
        return e3_migration.run()

    def test_stub_cost_is_linear(self, rows):
        stub = {row["ops"]: row["total_ms"] for row in by(rows, policy="stub")}
        assert stub[200] == pytest.approx(stub[100] * 2, rel=0.1)

    def test_migrating_flattens_after_migration(self, rows):
        mig = {row["ops"]: row["total_ms"]
               for row in by(rows, policy="migrating")}
        assert mig[200] < mig[100] * 1.2

    def test_crossover_exists_and_is_early(self, rows):
        paired = e3_migration.paired(rows)
        strictly = [row for row in paired
                    if row["migrating_ms"] < row["stub_ms"]]
        assert strictly
        assert strictly[0]["ops"] <= 20

    def test_short_bursts_do_not_migrate(self, rows):
        assert by(rows, policy="migrating", ops=2)[0]["migrated"] is False
        assert by(rows, policy="migrating", ops=50)[0]["migrated"] is True


class TestE4Sharing:
    @pytest.fixture(scope="class")
    def rows(self):
        return e4_sharing.run(ops=60)

    def test_dsm_wins_single_client(self, rows):
        single = [row for row in rows if row["clients"] == 1]
        assert who_wins(single, "technique", "mean_ms") == "dsm"

    def test_dsm_degrades_past_rpc_under_sharing(self, rows):
        crowded = [row for row in rows if row["clients"] == 8]
        dsm = by(crowded, technique="dsm")[0]["mean_ms"]
        rpc = by(crowded, technique="rpc")[0]["mean_ms"]
        assert dsm > rpc

    def test_rpc_is_roughly_flat(self, rows):
        rpc = [row["mean_ms"] for row in by(rows, technique="rpc")]
        assert max(rpc) < min(rpc) * 1.5


class TestE5Encapsulation:
    @pytest.fixture(scope="class")
    def rows(self):
        return e5_encapsulation.run()

    def test_all_policies_identical_results(self, rows):
        assert e5_encapsulation.digests_agree(rows)

    def test_protocols_differ_measurably(self, rows):
        messages = {row["policy"]: row["messages"] for row in rows}
        assert len(set(messages.values())) >= 3, \
            "policies should differ in message counts"

    def test_migrating_uses_fewest_messages(self, rows):
        assert who_wins(rows, "policy", "messages") == "migrating"


class TestE6Bootstrap:
    @pytest.fixture(scope="class")
    def rows(self):
        return e6_bootstrap.run()

    def test_bind_costs_two_round_trips(self, rows):
        flat = by(rows, scenario="bind via name service")[0]
        assert flat["messages"] == 4

    def test_chain_messages_linear_in_depth(self, rows):
        chain = {row["depth"]: row["messages"]
                 for row in by(rows, scenario="directory chain")}
        assert chain[8] == pytest.approx(chain[1] * 8, rel=0.2)

    def test_chain_latency_grows(self, rows):
        chain = by(rows, scenario="directory chain")
        latencies = [row["latency_ms"] for row in chain]
        assert latencies == sorted(latencies)


class TestE7Failures:
    @pytest.fixture(scope="class")
    def rows(self):
        return e7_failures.run(ops=60)

    def test_loss_is_fully_masked(self, rows):
        assert all(row["success_rate"] == 1.0 for row in rows)

    def test_zero_duplicates_at_every_loss_rate(self, rows):
        assert all(row["duplicate_execs"] == 0 for row in rows)

    def test_latency_grows_with_loss(self, rows):
        means = [row["mean_ms"] for row in rows]
        assert means[-1] > means[0] * 2

    def test_retries_grow_with_loss(self, rows):
        retries = [row["retries_per_op"] for row in rows]
        assert retries == sorted(retries)


class TestE8Lrpc:
    @pytest.fixture(scope="class")
    def rows(self):
        return e8_lrpc.run(ops=60)

    def test_fast_path_wins_at_full_locality(self, rows):
        on = by(rows, local_fraction=1.0, fast_path=True)[0]["mean_us"]
        off = by(rows, local_fraction=1.0, fast_path=False)[0]["mean_us"]
        assert on < off / 10

    def test_no_difference_when_fully_remote(self, rows):
        on = by(rows, local_fraction=0.0, fast_path=True)[0]["mean_us"]
        off = by(rows, local_fraction=0.0, fast_path=False)[0]["mean_us"]
        assert on == pytest.approx(off, rel=0.01)

    def test_latency_falls_with_locality_when_enabled(self, rows):
        enabled = [row["mean_us"] for row in by(rows, fast_path=True)]
        assert enabled[-1] < enabled[0] / 50


class TestE9Replication:
    @pytest.fixture(scope="class")
    def rows(self):
        # Full-size run: the staleness signal needs a few crash cycles.
        return e9_replication.run(ops=120)

    def test_reads_speed_up_with_near_replicas(self, rows):
        assert by(rows, mode="write-all", replicas=3)[0]["read_ms"] < \
            by(rows, mode="write-all", replicas=1)[0]["read_ms"] / 2

    def test_writes_slow_down_with_replicas(self, rows):
        writes = [row["write_ms"] for row in by(rows, mode="write-all")]
        assert writes == sorted(writes)

    def test_availability_improves(self, rows):
        assert by(rows, mode="write-all", replicas=3)[0]["availability"] > \
            by(rows, mode="write-all", replicas=1)[0]["availability"]
        assert by(rows, mode="write-all",
                  replicas=5)[0]["availability"] >= 0.99

    def test_overlapping_quorums_never_serve_stale(self, rows):
        # R + W > N: the versioned quorum mode's consistency contract,
        # here as a measurement rather than a checker verdict.
        assert by(rows, mode="quorum", write_quorum=2,
                  read_quorum=2)[0]["stale_reads"] == 0
        assert by(rows, mode="quorum", write_quorum=3,
                  read_quorum=1)[0]["stale_reads"] == 0

    def test_under_quorum_trades_staleness_for_availability(self, rows):
        weak = by(rows, mode="quorum", write_quorum=1, read_quorum=1)[0]
        strong = by(rows, mode="quorum", write_quorum=2, read_quorum=2)[0]
        pinned = by(rows, mode="quorum", write_quorum=3, read_quorum=1)[0]
        assert weak["stale_reads"] > strong["stale_reads"]
        assert weak["availability"] >= strong["availability"]
        assert strong["availability"] > pinned["availability"]
        assert weak["read_ms"] < strong["read_ms"] < pinned["read_ms"]

    def test_write_all_freshness_is_only_probabilistic(self, rows):
        # The legacy contract's measured counterpart to its simtest menu:
        # some sweep point serves a stale read under the crash plan.
        assert any(row["stale_reads"] > 0
                   for row in by(rows, mode="write-all"))


class TestE10Marshalling:
    @pytest.fixture(scope="class")
    def rows(self):
        return e10_marshalling.run(ops=15)

    def test_latency_grows_with_payload(self, rows):
        payloads = by(rows, scenario="payload")
        means = [row["mean_ms"] for row in payloads]
        assert means == sorted(means)
        assert means[-1] > means[0] * 10

    def test_small_payloads_dominated_by_fixed_costs(self, rows):
        payloads = {row["size"]: row["mean_ms"]
                    for row in by(rows, scenario="payload")}
        assert payloads[256] < payloads[16] * 1.5

    def test_references_beat_values(self, rows):
        value16 = by(rows, scenario="16 args by value")[0]
        ref16 = by(rows, scenario="16 args by reference")[0]
        assert ref16["bytes_per_op"] < value16["bytes_per_op"] / 3
        assert ref16["mean_ms"] < value16["mean_ms"]


class TestE11Ablation:
    @pytest.fixture(scope="class")
    def rows(self):
        return e11_ablation.run(ops=60)

    def test_at_most_once_prevents_duplicates(self, rows):
        assert by(rows, ablation="at-most-once", setting="on")[0]["value"] == 0
        assert by(rows, ablation="at-most-once", setting="off")[0]["value"] > 0

    def test_gc_shrinks_table(self, rows):
        before = by(rows, ablation="proxy GC", setting="before sweep")[0]["value"]
        after = by(rows, ablation="proxy GC", setting="after sweep")[0]["value"]
        assert after < before

    def test_compaction_collapses_chains(self, rows):
        raw = by(rows, ablation="forwarding", setting="raw chain")[0]["value"]
        compacted = by(rows, ablation="forwarding",
                       setting="compacted")[0]["value"]
        assert raw == 4
        assert compacted == 1


class TestE12Pipelining:
    @pytest.fixture(scope="class")
    def rows(self):
        return e12_pipelining.run(ops=24)

    def test_wider_windows_monotonically_faster(self, rows):
        numbered = [row for row in rows if row["window"] != "unbounded"]
        totals = [row["total_ms"] for row in numbered]
        assert totals == sorted(totals, reverse=True)

    def test_unbounded_beats_sequential_heavily(self, rows):
        sequential = by(rows, window=1)[0]["total_ms"]
        unbounded = by(rows, window="unbounded")[0]["total_ms"]
        assert unbounded < sequential / 4

    def test_doubling_window_roughly_halves_time_early(self, rows):
        w1 = by(rows, window=1)[0]["total_ms"]
        w2 = by(rows, window=2)[0]["total_ms"]
        assert w2 == pytest.approx(w1 / 2, rel=0.15)


class TestE13Persistence:
    @pytest.fixture(scope="class")
    def rows(self):
        return e13_persistence.run()

    def test_tight_interval_loses_nothing(self, rows):
        assert by(rows, interval=1)[0]["lost_at_crash"] == 0

    def test_loss_grows_with_interval(self, rows):
        losses = [row["lost_at_crash"] for row in rows]
        assert losses == sorted(losses)
        assert losses[-1] > 0

    def test_overhead_falls_with_interval(self, rows):
        means = [row["mean_write_ms"] for row in rows]
        assert means == sorted(means, reverse=True)
        assert means[0] > means[-1] * 2

    def test_disk_writes_track_interval(self, rows):
        writes = {row["interval"]: row["disk_writes"] for row in rows}
        assert writes[1] > writes[32]


class TestE14Transactions:
    @pytest.fixture(scope="class")
    def rows(self):
        return e14_transactions.run(rounds=20)

    def test_abort_rate_grows_with_contention(self, rows):
        rates = [row["abort_rate"] for row in rows]
        assert rates == sorted(rates)

    def test_wide_pool_barely_conflicts(self, rows):
        assert by(rows, hot_keys=64)[0]["abort_rate"] < 0.2

    def test_single_hot_key_conflicts_heavily(self, rows):
        assert by(rows, hot_keys=1)[0]["abort_rate"] > 0.5

    def test_goodput_falls_with_contention(self, rows):
        assert by(rows, hot_keys=1)[0]["goodput_per_s"] < \
            by(rows, hot_keys=64)[0]["goodput_per_s"]


class TestE15WeakDsm:
    @pytest.fixture(scope="class")
    def rows(self):
        return e15_weak_dsm.run(ops=60)

    def test_weak_cuts_messages(self, rows):
        strong = by(rows, clients=8, protocol="strong")[0]["messages"]
        weak = by(rows, clients=8, protocol="weak")[0]["messages"]
        assert weak < strong / 2

    def test_weak_cuts_latency_under_sharing(self, rows):
        strong = by(rows, clients=8, protocol="strong")[0]["mean_ms"]
        weak = by(rows, clients=8, protocol="weak")[0]["mean_ms"]
        assert weak < strong

    def test_strong_never_stale(self, rows):
        assert all(row["stale_read_frac"] == 0
                   for row in by(rows, protocol="strong"))

    def test_weak_pays_in_staleness(self, rows):
        assert by(rows, clients=8, protocol="weak")[0]["stale_read_frac"] > 0

    def test_staleness_grows_with_writers(self, rows):
        fracs = [row["stale_read_frac"] for row in by(rows, protocol="weak")]
        assert fracs[-1] >= fracs[0]


class TestE16Events:
    @pytest.fixture(scope="class")
    def rows(self):
        return e16_events.run(events=20)

    def test_fanout_messages_grow_with_subscribers(self, rows):
        fanout = by(rows, scenario="fan-out")
        messages = [row["messages"] for row in fanout]
        assert messages == sorted(messages)

    def test_lossless_push_is_complete(self, rows):
        assert all(row["push_delivered_frac"] == 1.0
                   for row in by(rows, scenario="fan-out"))

    def test_replay_recovers_all_after_loss(self, rows):
        lossy = by(rows, scenario="40% loss")[0]
        assert lossy["push_delivered_frac"] < 1.0
        assert lossy["after_catch_up_frac"] == 1.0


class TestE17WanPlacement:
    @pytest.fixture(scope="class")
    def rows(self):
        return e17_wan_placement.run(ops=80)

    def test_central_strands_remote_site(self, rows):
        central_beta = by(rows, deployment="central", site="beta")[0]
        central_alpha = by(rows, deployment="central", site="alpha")[0]
        assert central_beta["mean_ms"] > central_alpha["mean_ms"] * 4

    def test_replication_equalises(self, rows):
        alpha = by(rows, deployment="replicated", site="alpha")[0]["mean_ms"]
        beta = by(rows, deployment="replicated", site="beta")[0]["mean_ms"]
        assert abs(alpha - beta) < max(alpha, beta) * 0.5

    def test_remote_site_rescued_by_replica(self, rows):
        assert by(rows, deployment="replicated", site="beta")[0]["mean_ms"] < \
            by(rows, deployment="central", site="beta")[0]["mean_ms"] / 3

    def test_caching_beats_central_for_remote(self, rows):
        assert by(rows, deployment="caching", site="beta")[0]["mean_ms"] < \
            by(rows, deployment="central", site="beta")[0]["mean_ms"]


class TestE18Fastpath:
    @pytest.fixture(scope="class")
    def payload(self):
        return e18_fastpath.bench_payload(ops=200)

    def test_covers_every_shipped_policy(self, payload):
        assert [row["policy"] for row in payload["policies"]] == \
            list(e18_fastpath.POLICIES)

    def test_wall_and_calibration_positive(self, payload):
        assert payload["calibration_rate"] > 0
        for row in payload["policies"]:
            assert row["ops_per_sec"] > 0
            assert row["wall_us_per_op"] > 0
            assert row["norm_ops"] > 0

    def test_deterministic_fields_shape(self, payload):
        rows = {row["policy"]: row for row in payload["policies"]}
        assert rows["caching"]["messages"] < rows["stub"]["messages"]
        assert rows["caching"]["sim_us_per_op"] < rows["stub"]["sim_us_per_op"]
        assert rows["replicated"]["messages"] > rows["stub"]["messages"]
        # Fault-free, the resilience layer is pure bookkeeping: the virtual
        # timeline must be exactly the stub's.
        assert rows["resilient"]["sim_us_per_op"] == \
            rows["stub"]["sim_us_per_op"]
        assert rows["resilient"]["messages"] == rows["stub"]["messages"]

    def test_run_rows_mirror_the_payload(self, payload):
        rows = e18_fastpath.run(ops=200)
        assert [row["policy"] for row in rows] == \
            [row["policy"] for row in payload["policies"]]
        for row, measured in zip(rows, payload["policies"]):
            assert row["sim_us_per_op"] == measured["sim_us_per_op"]
            assert row["messages"] == measured["messages"]
