"""End-to-end zero-copy: bulk payloads cross the stack without copies.

A large ``bytes`` argument in a pure frame (empty headers, immutable
body) must arrive at the server as the *same object* the client passed —
the raw-segment path parks it on the message and the carried decode
hands it through — while every virtual-time observable (wire bytes,
transit charges) matches the copying encoding exactly.
"""

from __future__ import annotations

from repro.core.export import get_space
from repro.core.service import Service
from repro.iface.interface import operation
from repro.metrics.counters import MessageWindow
from repro.wire.marshal import RAW_THRESHOLD


class Keeper(Service):
    """Remembers the exact object it was handed."""

    def __init__(self):
        self.last = None

    @operation
    def keep(self, item) -> int:
        self.last = item
        return len(item)


class TestZeroCopyIdentity:
    def test_bulk_bytes_arrive_as_the_same_object(self, pair):
        system, server, client = pair
        keeper = Keeper()
        ref = get_space(server).export(keeper)
        proxy = get_space(client).bind_ref(ref)
        blob = b"\x33" * (RAW_THRESHOLD * 4)
        assert proxy.keep(blob) == len(blob)
        assert keeper.last is blob

    def test_small_payloads_still_identity_share_via_carry(self, pair):
        # Below the raw threshold the carried fast path still shares the
        # immutable args tuple — identity is a pure-frame property, not
        # a size property.
        system, server, client = pair
        keeper = Keeper()
        ref = get_space(server).export(keeper)
        proxy = get_space(client).bind_ref(ref)
        blob = b"tiny"
        proxy.keep(blob)
        assert keeper.last is blob

    def test_wire_accounting_matches_the_inline_encoding(self, pair):
        # Zero-copy must be invisible to the cost model: bytes on the
        # wire scale with the payload exactly as the inline path charged.
        system, server, client = pair
        keeper = Keeper()
        ref = get_space(server).export(keeper)
        proxy = get_space(client).bind_ref(ref)
        small, large = 1000, 1000 + RAW_THRESHOLD * 8
        proxy.keep(b"w" * 8)  # warm the bind path
        with MessageWindow(system) as first:
            proxy.keep(b"a" * small)
        with MessageWindow(system) as second:
            proxy.keep(b"b" * large)
        assert second.report.bytes - first.report.bytes == large - small

    def test_mutable_payloads_are_not_identity_shared(self, pair):
        # A bytearray is mutable: it may ride as a zero-copy segment but
        # must NOT surface as the caller's object on the server side.
        system, server, client = pair
        keeper = Keeper()
        ref = get_space(server).export(keeper)
        proxy = get_space(client).bind_ref(ref)
        owned = bytearray(b"\x44" * (RAW_THRESHOLD * 2))
        proxy.keep(owned)
        assert keeper.last is not owned
        assert bytes(keeper.last) == bytes(owned)
