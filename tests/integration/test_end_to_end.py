"""End-to-end scenario: a small distributed office system, all policies live.

One system hosting a file service (caching), a mailbox (batching), a shared
counter (migrating), a replicated directory KV, and the name service —
exercised together by several clients, with a crash in the middle.
"""

from __future__ import annotations

import pytest

import repro
from repro.apps.counter import MigratingCounter
from repro.apps.files import FileService
from repro.apps.kv import KVStore
from repro.apps.mailbox import Mailbox
from repro.core.policies.replicating import replicate
from repro.naming.bootstrap import install_name_service


@pytest.fixture
def office():
    system = repro.make_system(seed=2026)
    hub = system.add_node("hub").create_context("services")
    east = system.add_node("east").create_context("apps")
    west = system.add_node("west").create_context("apps")
    desk = system.add_node("desk").create_context("apps")
    install_name_service(hub)
    repro.register(hub, "files", FileService())
    repro.register(hub, "mail", Mailbox())
    repro.register(hub, "ticket", MigratingCounter())
    directory_ref = replicate([hub, east, west], KVStore, write_quorum=2)
    repro.register(hub, "directory", directory_ref)
    return system, hub, east, west, desk


class TestOfficeScenario:
    def test_full_workday(self, office):
        system, hub, east, west, desk = office

        # Morning: east writes documents, west reads them through its cache.
        files_east = repro.bind(east, "files")
        files_west = repro.bind(west, "files")
        for index in range(5):
            files_east.write_file(f"/docs/report{index}", b"data" * 50)
        assert files_west.read_file("/docs/report0") == b"data" * 50
        before = west.now
        files_west.read_file("/docs/report0")   # cached
        assert west.now - before < system.costs.remote_latency

        # Mail floods in, batched.
        mail_desk = repro.bind(desk, "mail")
        for index in range(20):
            mail_desk.post("desk", f"memo {index}")
        assert mail_desk.count() == 20

        # The ticket counter migrates to its hottest user.
        ticket = repro.bind(desk, "ticket")
        numbers = [ticket.incr() for _ in range(8)]
        assert numbers == list(range(1, 9))
        assert ticket.proxy_is_local

        # The replicated directory serves reads even when the hub dies.
        directory = repro.bind(desk, "directory")
        directory.put("east", "room 12")
        hub_node = system.node("hub")
        hub_node.crash()
        assert directory.get("east") == "room 12"
        hub_node.restart()

        # After the crash the whole system still honours the principle.
        repro.assert_principle(system)

    def test_cross_service_reference_passing(self, office):
        system, hub, east, west, desk = office
        # East stores a *proxy to the mailbox* inside the directory; west
        # pulls it out and posts — reference passing across three parties.
        directory_east = repro.bind(east, "directory")
        mail_east = repro.bind(east, "mail")
        directory_east.put("mailbox", mail_east)
        directory_west = repro.bind(west, "directory")
        mailbox_via_directory = directory_west.get("mailbox")
        mailbox_via_directory.post("west", "hello through the directory")
        count = repro.bind(desk, "mail").count()
        assert count == 1
        repro.assert_principle(system)

    def test_workload_driver_over_office(self, office):
        from repro.workloads.distributions import ZipfSampler
        from repro.workloads.sessions import (OpMix, proxy_session,
                                              run_interleaved)
        system, hub, east, west, desk = office
        sessions = []
        for index, ctx in enumerate((east, west, desk)):
            proxy = repro.bind(ctx, "directory")
            mix = OpMix(0.7, ZipfSampler(20, system.seeds.stream(f"k{index}")))
            sessions.append(proxy_session(f"s{index}", ctx, proxy, mix,
                                          system.seeds.stream(f"r{index}")))
        result = run_interleaved(sessions, ops_per_session=30)
        assert result.operations == 90
        assert result.failures == 0
        assert result.mean_latency() > 0
        repro.assert_principle(system)
