"""Tests for the codebase: factory, interface, and class registries."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.factory import Codebase, global_policies, register_policy
from repro.core.proxy import Proxy
from repro.iface.interface import Interface, Operation
from repro.kernel.errors import BindError, ConfigurationError


class TestFactories:
    def test_builtins_registered_globally(self):
        names = set(global_policies())
        assert {"stub", "caching", "batching", "migrating", "replicated",
                "tracing", "leased", "composite"} <= names

    def test_per_system_registration_is_isolated(self):
        class Custom(Proxy):
            policy_name = "custom-local"

        system_a = repro.make_system(seed=1)
        system_b = repro.make_system(seed=1)
        system_a.codebase.register_factory(Custom)
        assert "custom-local" in system_a.codebase.factories
        assert "custom-local" not in system_b.codebase.factories

    def test_register_policy_requires_name(self):
        class Nameless(Proxy):
            policy_name = ""

        with pytest.raises(ConfigurationError):
            register_policy(Nameless)

    def test_instantiate_unknown_policy_rejected(self, pair):
        system, server, client = pair
        from repro.wire.refs import ObjectRef
        ref = ObjectRef("server/main", "x", "KVStore", 0, "nonexistent")
        system.codebase.register_interface(KVStore.interface())
        with pytest.raises(BindError):
            system.codebase.instantiate(client, ref)


class TestInterfaces:
    def test_register_and_lookup(self, system):
        iface = Interface("Thing", [Operation("op")])
        system.codebase = system.codebase or Codebase(system)
        system.codebase.register_interface(iface)
        assert system.codebase.interface("Thing") is iface

    def test_unknown_interface_rejected(self, system):
        with pytest.raises(BindError):
            system.codebase.interface("Mystery")

    def test_conflicting_redefinition_rejected(self, system):
        system.codebase.register_interface(
            Interface("Clash", [Operation("a")]))
        with pytest.raises(ConfigurationError):
            system.codebase.register_interface(
                Interface("Clash", [Operation("b")]))

    def test_identical_redefinition_tolerated(self, system):
        first = Interface("Same", [Operation("a")])
        second = Interface("Same", [Operation("a")])
        system.codebase.register_interface(first)
        system.codebase.register_interface(second)


class TestClasses:
    def test_register_and_resolve(self, system):
        system.codebase.register_class(KVStore)
        assert system.codebase.resolve_class("KVStore") is KVStore

    def test_custom_name(self, system):
        system.codebase.register_class(KVStore, name="Store")
        assert system.codebase.resolve_class("Store") is KVStore

    def test_unknown_class_rejected(self, system):
        with pytest.raises(BindError):
            system.codebase.resolve_class("Phantom")
