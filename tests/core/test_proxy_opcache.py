"""The proxy's operation caches: memoisation and (crucially) invalidation.

``Proxy.__getattr__`` memoises bound operations in the instance ``__dict__``
and ``proxy_operation`` caches resolved signatures, so the hot path of a
repeated ``proxy.verb(...)`` never re-enters attribute dispatch or the
interface table.  A cache like that is only correct if every event that
could change the answer — rebind, upgrade handshake, interface replacement —
drops it; these tests pin exactly that.
"""

import pytest

from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.core.proxy import _BoundProxyOperation
from repro.iface.interface import Interface
from repro.kernel.errors import InterfaceError


@pytest.fixture
def bound(pair):
    system, server, client = pair
    store = KVStore()
    ref = get_space(server).export(store)
    proxy = get_space(client).bind_ref(ref)
    return system, server, client, store, ref, proxy


class TestMemoisation:
    def test_bound_operation_is_memoised_on_the_instance(self, bound):
        *_, proxy = bound
        first = proxy.get
        assert isinstance(first, _BoundProxyOperation)
        assert proxy.__dict__["get"] is first
        assert proxy.get is first  # plain attribute hit, no __getattr__

    def test_memoised_operation_still_forwards(self, bound):
        *_, store, _, proxy = bound
        op = proxy.put
        op("k", "v")
        assert store.data == {"k": "v"}
        assert proxy.get("k") == "v"

    def test_resolved_signatures_are_cached(self, bound):
        *_, proxy = bound
        op = proxy.proxy_operation("get")
        assert proxy.proxy_opcache["get"] is op
        assert proxy.proxy_operation("get") is op

    def test_distinct_verbs_get_distinct_bindings(self, bound):
        *_, proxy = bound
        assert proxy.get is not proxy.put
        assert "get" in proxy.__dict__ and "put" in proxy.__dict__


class TestInvalidation:
    def test_rebind_drops_both_caches(self, bound):
        _system, server, _client, _store, ref, proxy = bound
        _ = proxy.get
        proxy.proxy_operation("get")
        moved = ref.moved_to(server.context_id)
        proxy.proxy_rebind(moved)
        assert "get" not in proxy.__dict__
        assert proxy.proxy_opcache == {}
        assert proxy.proxy_ref == moved

    def test_upgrade_drops_both_caches(self, bound):
        *_, proxy = bound
        _ = proxy.get
        proxy.proxy_operation("put")
        proxy.proxy_upgrade({"hint": 1})
        assert "get" not in proxy.__dict__
        assert proxy.proxy_opcache == {}
        assert proxy.proxy_config["hint"] == 1

    def test_interface_replacement_drops_stale_operations(self, bound):
        *_, proxy = bound
        _ = proxy.put  # memoised under the full interface
        full = proxy.proxy_interface
        narrowed = Interface("KVReadOnly", [full.operation("get")])
        proxy.proxy_interface = narrowed
        # The stale binding must not answer for a verb the new interface
        # no longer declares.
        assert "put" not in proxy.__dict__
        with pytest.raises(InterfaceError):
            proxy.put
        # Declared verbs still resolve (and re-memoise) under the new one.
        assert proxy.get("missing") is None
        assert "get" in proxy.__dict__

    def test_rebound_proxy_keeps_working(self, bound):
        system, server, client, store, ref, proxy = bound
        proxy.put("k", "v1")
        proxy.proxy_rebind(ref)  # same location: caches drop, routing holds
        assert proxy.get("k") == "v1"
        assert proxy.proxy_stats["rebinds"] == 1

    def test_non_proxy_instance_attributes_survive_invalidation(self, bound):
        *_, proxy = bound
        _ = proxy.get
        stats = proxy.proxy_stats
        proxy.proxy_invalidate_ops()
        assert proxy.proxy_stats is stats
        assert proxy.proxy_config is not None
