"""Unit tests for the principle auditor."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.core.principle import assert_principle, audit


class TestCleanSystems:
    def test_fresh_system_is_clean(self, star):
        system, server, clients = star
        assert audit(system).clean

    def test_busy_system_is_clean(self, star):
        system, server, clients = star
        repro.register(server, "kv", KVStore())
        for ctx in clients:
            proxy = repro.bind(ctx, "kv")
            proxy.put(f"from-{ctx.context_id}", 1)
        report = audit(system)
        assert report.clean, report.violations
        assert report.proxies_seen > 0
        assert report.exports_seen > 0

    def test_assert_principle_passes_quietly(self, star):
        system, server, clients = star
        assert_principle(system)


class TestViolationsDetected:
    def test_foreign_object_in_proxy_table(self, pair):
        system, server, client = pair
        get_space(client)
        client.proxies["bogus"] = KVStore()  # not a proxy at all
        report = audit(system)
        assert any("I1" in violation for violation in report.violations)

    def test_misfiled_proxy_detected(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        proxy = get_space(client).bind_ref(ref)
        client.proxies["wrong-slot"] = proxy
        report = audit(system)
        assert any("I3" in violation for violation in report.violations)

    def test_home_proxy_without_export_detected(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        proxy = get_space(client).bind_ref(ref)
        # Forge a proxy pointing at the client's own context with no export.
        from dataclasses import replace
        proxy.proxy_ref = replace(ref, context_id=client.context_id)
        client.proxies.clear()
        client.proxies[proxy.proxy_ref.key] = proxy
        report = audit(system)
        assert any("I2" in violation for violation in report.violations)

    def test_raw_object_exported_from_two_contexts(self, pair):
        system, server, client = pair
        store = KVStore()
        get_space(server).export(store)
        get_space(client).export(store)   # the same raw object elsewhere
        report = audit(system)
        assert any("I5" in violation for violation in report.violations)

    def test_assert_principle_raises_with_details(self, pair):
        system, server, client = pair
        get_space(client)
        client.proxies["bogus"] = KVStore()
        with pytest.raises(AssertionError, match="I1"):
            assert_principle(system)


class TestPostMigrationState:
    def test_home_proxy_over_live_export_is_legal(self, pair):
        """The optimised state after migration must not be flagged."""
        system, server, client = pair
        from repro.apps.counter import MigratingCounter
        repro.register(server, "ctr", MigratingCounter())
        proxy = repro.bind(client, "ctr")
        for _ in range(10):
            proxy.incr()
        assert proxy.proxy_is_local
        assert audit(system).clean
