"""Unit tests for the Proxy base class: dispatch, interface, rebinding."""

import pytest

from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.kernel.errors import InterfaceError, ObjectMoved, RpcTimeout


@pytest.fixture
def bound(pair):
    system, server, client = pair
    store = KVStore()
    ref = get_space(server).export(store)
    proxy = get_space(client).bind_ref(ref)
    return system, server, client, store, ref, proxy


class TestDispatch:
    def test_operations_forward(self, bound):
        system, server, client, store, ref, proxy = bound
        proxy.put("k", "v")
        assert store.data == {"k": "v"}
        assert proxy.get("k") == "v"

    def test_undeclared_operation_rejected_locally(self, bound):
        system, server, client, store, ref, proxy = bound
        mark = system.trace.mark()
        with pytest.raises(InterfaceError):
            proxy.definitely_not_an_op
        assert not system.trace.since(mark)

    def test_proxy_attributes_are_local(self, bound):
        system, server, client, store, ref, proxy = bound
        assert proxy.proxy_ref == ref
        assert proxy.proxy_context is client
        with pytest.raises(AttributeError):
            proxy.proxy_nonexistent

    def test_underscore_attributes_are_local(self, bound):
        system, server, client, store, ref, proxy = bound
        with pytest.raises(AttributeError):
            proxy._something

    def test_stats_count_invocations(self, bound):
        system, server, client, store, ref, proxy = bound
        proxy.get("a")
        proxy.get("b")
        assert proxy.proxy_stats["invocations"] == 2
        assert proxy.proxy_stats["remote_calls"] == 2

    def test_bound_operation_repr_is_informative(self, bound):
        system, server, client, store, ref, proxy = bound
        assert "get" in repr(proxy.get)

    def test_proxy_is_local_false_for_remote(self, bound):
        system, server, client, store, ref, proxy = bound
        assert not proxy.proxy_is_local


class TestRebinding:
    def test_rebind_updates_table(self, bound):
        system, server, client, store, ref, proxy = bound
        new_ref = ref.moved_to("client1/main")
        proxy.proxy_rebind(new_ref)
        assert proxy.proxy_ref == new_ref
        assert client.proxies[new_ref.key] is proxy

    def test_redirect_is_chased_automatically(self, star):
        system, server, clients = star
        store = KVStore()
        store.put("k", "migrated!")
        space = get_space(server)
        ref = space.export(store)
        # Manually move the object to another context, leaving a pointer.
        other = clients[1]
        new_ref = ref.moved_to(other.context_id)
        get_space(other).export(store, oid=ref.oid, epoch=new_ref.epoch)
        space.mark_migrated(ref.oid, new_ref)
        proxy = get_space(clients[0]).bind_ref(ref, handshake=False)
        assert proxy.get("k") == "migrated!"
        assert proxy.proxy_ref.context_id == other.context_id
        assert proxy.proxy_stats["rebinds"] == 1

    def test_unresolvable_redirect_loop_gives_up(self, bound):
        system, server, client, store, ref, proxy = bound
        # A forwarding pointer that points back at itself (corrupt state).
        space = get_space(server)
        space.mark_migrated(ref.oid, ref.moved_to(server.context_id))
        server.exports[ref.oid]
        with pytest.raises((RpcTimeout, ObjectMoved)):
            proxy.get("k")


class TestLifecycleHooks:
    def test_install_called_once_per_bind(self, pair):
        from repro.core.proxy import Proxy

        installs = []

        class Probe(Proxy):
            policy_name = "probe-install"

            def proxy_install(self):
                installs.append(self.proxy_ref.key)

        system, server, client = pair
        system.codebase.register_factory(Probe)
        ref = get_space(server).export(KVStore(), policy="probe-install")
        space = get_space(client)
        space.bind_ref(ref)
        space.bind_ref(ref)
        assert len(installs) == 1

    def test_discard_hook_runs(self, pair):
        from repro.core.proxy import Proxy

        discards = []

        class Probe(Proxy):
            policy_name = "probe-discard"

            def proxy_discard(self):
                discards.append(True)

        system, server, client = pair
        system.codebase.register_factory(Probe)
        ref = get_space(server).export(KVStore(), policy="probe-discard")
        space = get_space(client)
        proxy = space.bind_ref(ref)
        space.discard(proxy)
        assert discards == [True]
