"""Tests for the Service base class conveniences."""

import repro
from repro.core.service import Service
from repro.iface.interface import Interface


class Widget(Service):
    default_policy = "caching"
    default_config = {"ttl": 0.25, "invalidation": False}

    def __init__(self, size=1):
        self.size = size
        self.tags = ["new"]

    @repro.operation(readonly=True)
    def describe(self):
        return {"size": self.size, "tags": list(self.tags)}

    @repro.operation
    def grow(self, amount):
        self.size += amount
        return self.size


class TestServiceBase:
    def test_interface_classmethod(self):
        iface = Widget.interface()
        assert isinstance(iface, Interface)
        assert iface.names() == ["describe", "grow"]
        assert iface is Widget.interface(), "cached per class"

    def test_default_migration_capsule(self):
        widget = Widget(size=7)
        widget.tags.append("hot")
        clone = Widget.from_migration_state(widget.migrate_state())
        assert clone.size == 7
        assert clone.tags == ["new", "hot"]
        assert clone is not widget

    def test_capsule_is_shallow_plain_data(self):
        state = Widget(size=2).migrate_state()
        assert state == {"size": 2, "tags": ["new"]}

    def test_default_policy_flows_through_export(self, pair):
        system, server, client = pair
        from repro.core.export import get_space
        ref = get_space(server).export(Widget())
        assert ref.policy == "caching"
        entry = get_space(server).entry(ref.oid)
        assert entry.policy_config["ttl"] == 0.25

    def test_default_config_is_copied_not_shared(self, pair):
        system, server, client = pair
        from repro.core.export import get_space
        ref_a = get_space(server).export(Widget())
        ref_b = get_space(server).export(Widget())
        entry_a = get_space(server).entry(ref_a.oid)
        entry_b = get_space(server).entry(ref_b.oid)
        entry_a.policy_config["ttl"] = 9.9
        assert entry_b.policy_config["ttl"] == 0.25
        assert Widget.default_config["ttl"] == 0.25
