"""Unit tests for the object space: export, unexport, swizzle hooks."""

import pytest

from repro.apps.kv import CachedKVStore, KVStore
from repro.core.export import CTXMGR_OID, ObjectSpace, get_space
from repro.core.proxy import is_proxy
from repro.kernel.errors import (
    BindError,
    ConfigurationError,
    ConformanceError,
    EncapsulationViolation,
)
from repro.iface.interface import Interface, Operation
from repro.wire.refs import ObjectRef


class TestExport:
    def test_export_returns_ref_with_policy(self, pair):
        system, server, client = pair
        ref = get_space(server).export(CachedKVStore())
        assert ref.policy == "caching"
        assert ref.interface == "CachedKVStore"
        assert ref.context_id == "server/main"

    def test_explicit_policy_overrides_default(self, pair):
        system, server, client = pair
        ref = get_space(server).export(CachedKVStore(), policy="stub")
        assert ref.policy == "stub"

    def test_unknown_policy_rejected(self, pair):
        system, server, client = pair
        with pytest.raises(ConfigurationError):
            get_space(server).export(KVStore(), policy="nonsense")

    def test_export_registers_interface(self, pair):
        system, server, client = pair
        get_space(server).export(KVStore())
        assert system.codebase.interface("KVStore") is not None

    def test_nonconforming_interface_rejected(self, pair):
        system, server, client = pair
        other = Interface("Other", [Operation("zap", ("a", "b"))])
        with pytest.raises(ConformanceError):
            get_space(server).export(KVStore(), interface=other)

    def test_export_proxy_rejected(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        proxy = get_space(client).bind_ref(ref)
        with pytest.raises(EncapsulationViolation):
            get_space(client).export(proxy)

    def test_duplicate_wellknown_oid_rejected(self, pair):
        system, server, client = pair
        space = get_space(server)
        with pytest.raises(ConfigurationError):
            space.export(KVStore(), oid=CTXMGR_OID)

    def test_ref_of_roundtrip(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        assert get_space(server).ref_of(store) == ref

    def test_ref_of_unexported_rejected(self, pair):
        system, server, client = pair
        with pytest.raises(BindError):
            get_space(server).ref_of(KVStore())

    def test_unexport_makes_reference_dangle(self, pair):
        system, server, client = pair
        store = KVStore()
        space = get_space(server)
        ref = space.export(store)
        proxy = get_space(client).bind_ref(ref)
        space.unexport(store)
        from repro.kernel.errors import DanglingReference
        with pytest.raises(DanglingReference):
            proxy.get("k")

    def test_space_created_once(self, pair):
        system, server, client = pair
        assert get_space(server) is get_space(server)
        with pytest.raises(ConfigurationError):
            ObjectSpace(server)

    def test_ctxmgr_installed_automatically(self, pair):
        system, server, client = pair
        get_space(server)
        assert CTXMGR_OID in server.exports


class TestSwizzleOutbound:
    def test_exported_object_travels_as_ref(self, pair):
        system, server, client = pair
        store = KVStore()
        space = get_space(server)
        ref = space.export(store)
        assert space.context.encoder_hook(store) == ref

    def test_proxy_travels_as_target_ref(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        proxy = get_space(client).bind_ref(ref)
        assert client.encoder_hook(proxy) == ref

    def test_plain_values_untouched(self, pair):
        system, server, client = pair
        get_space(server)
        assert server.encoder_hook(42) is None
        assert server.encoder_hook("text") is None
        assert server.encoder_hook([1, 2]) is None

    def test_unexported_service_object_auto_exports(self, pair):
        system, server, client = pair
        space = get_space(server)
        store = KVStore()
        ref = space.context.encoder_hook(store)
        assert isinstance(ref, ObjectRef)
        assert space.ref_of(store) == ref

    def test_strict_mode_rejects_auto_export(self, system):
        server = system.add_node("s").create_context("m")
        ObjectSpace(server, strict=True)
        with pytest.raises(EncapsulationViolation):
            server.encoder_hook(KVStore())

    def test_migrated_alias_travels_as_forward_ref(self, pair):
        system, server, client = pair
        store = KVStore()
        space = get_space(server)
        ref = space.export(store)
        forward = ref.moved_to("client0/main")
        space.mark_migrated(ref.oid, forward)
        assert server.encoder_hook(store) == forward


class TestSwizzleInbound:
    def test_foreign_ref_becomes_proxy(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        get_space(client)
        value = client.decoder_hook(ref)
        assert is_proxy(value)
        assert value.proxy_ref == ref

    def test_home_ref_becomes_real_object(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        assert server.decoder_hook(ref) is store

    def test_proxy_identity_is_stable(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        get_space(client)
        assert client.decoder_hook(ref) is client.decoder_hook(ref)

    def test_full_loop_proxy_comes_home_as_object(self, pair):
        """A proxy passed back to the object's home arrives as the object."""
        system, server, client = pair
        store = KVStore()
        holder = KVStore()
        store_ref = get_space(server).export(store)
        holder_ref = get_space(server).export(holder)
        client_space = get_space(client)
        store_proxy = client_space.bind_ref(store_ref)
        holder_proxy = client_space.bind_ref(holder_ref)
        # The client stores its *proxy*; at home it unswizzles to the object.
        holder_proxy.put("stored", store_proxy)
        assert holder.data["stored"] is store
