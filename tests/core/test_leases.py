"""Tests for lease-based export reclamation (distributed GC)."""

import pytest

from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.core.leases import (
    LEASES_OID,
    ensure_lease_service,
    expire_leases,
)
from repro.kernel.errors import DanglingReference


def deploy(server, duration=1.0):
    store = KVStore()
    ref = get_space(server).export(store, policy="leased",
                                   config={"lease_duration": duration})
    return store, ref


class TestLeaseLifecycle:
    def test_bind_acquires_lease(self, pair):
        system, server, client = pair
        store, ref = deploy(server)
        proxy = get_space(client).bind_ref(ref)
        assert proxy.proxy_lease_expiry is not None
        service = server.exports[LEASES_OID].obj
        assert service.holders_of(ref.oid) == [client.context_id]

    def test_use_renews_past_half_life(self, pair):
        system, server, client = pair
        store, ref = deploy(server, duration=1.0)
        proxy = get_space(client).bind_ref(ref)
        first_expiry = proxy.proxy_lease_expiry
        client.clock.advance(0.7)
        proxy.get("k")
        assert proxy.proxy_lease_expiry > first_expiry
        assert proxy.proxy_stats["lease_renewals"] == 1

    def test_use_within_half_life_does_not_renew(self, pair):
        system, server, client = pair
        store, ref = deploy(server, duration=10.0)
        proxy = get_space(client).bind_ref(ref)
        proxy.get("k")
        assert proxy.proxy_stats["lease_renewals"] == 0

    def test_discard_releases(self, pair):
        system, server, client = pair
        store, ref = deploy(server)
        space = get_space(client)
        proxy = space.bind_ref(ref)
        space.discard(proxy)
        service = server.exports[LEASES_OID].obj
        assert service.holders_of(ref.oid) == []


class TestReclamation:
    def test_lapsed_export_is_reclaimed(self, pair):
        system, server, client = pair
        store, ref = deploy(server, duration=0.5)
        proxy = get_space(client).bind_ref(ref)
        client.clock.advance(2.0)
        server.clock.advance(2.0)
        assert expire_leases(get_space(server)) == 1
        with pytest.raises(DanglingReference):
            proxy.get("k")

    def test_live_lease_blocks_reclamation(self, pair):
        system, server, client = pair
        store, ref = deploy(server, duration=100.0)
        proxy = get_space(client).bind_ref(ref)
        server.clock.advance(1.0)
        assert expire_leases(get_space(server)) == 0
        assert proxy.get("k") is None

    def test_one_live_holder_among_many_keeps_export(self, star):
        system, server, clients = star
        store, ref = deploy(server, duration=1.0)
        proxies = [get_space(ctx).bind_ref(ref) for ctx in clients]
        # Two clients idle past expiry; the third keeps renewing.
        for _ in range(4):
            for ctx in clients:
                ctx.clock.advance(0.6)
            server.clock.advance(0.6)
            proxies[2].get("k")
            expire_leases(get_space(server))
        assert proxies[2].get("k") is None, "renewing holder must survive"

    def test_unleased_exports_never_reclaimed(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)   # plain stub policy
        ensure_lease_service(get_space(server))
        server.clock.advance(1000.0)
        assert expire_leases(get_space(server)) == 0
        proxy = get_space(client).bind_ref(ref)
        assert proxy.get("k") is None

    def test_rebind_after_reclamation_via_fresh_export(self, pair):
        system, server, client = pair
        store, ref = deploy(server, duration=0.2)
        get_space(client).bind_ref(ref)
        client.clock.advance(1.0)
        server.clock.advance(1.0)
        expire_leases(get_space(server))
        # The service re-exports (new oid) and the client binds again.
        store2, ref2 = deploy(server, duration=5.0)
        fresh = get_space(client).bind_ref(ref2)
        fresh.put("k", 1)
        assert fresh.get("k") == 1


class TestDegradation:
    def test_unreachable_lease_service_degrades_to_stub(self, pair):
        system, server, client = pair
        store, ref = deploy(server)
        server.node.crash()
        proxy = get_space(client).bind_ref(ref, handshake=False)
        assert proxy.proxy_lease_expiry is None
        server.node.restart()
        assert proxy.get("k") is None, "proxy still works, just lease-less"

    def test_expiry_stats(self, pair):
        system, server, client = pair
        store, ref = deploy(server, duration=0.1)
        get_space(client).bind_ref(ref)
        client.clock.advance(1.0)
        server.clock.advance(1.0)
        expire_leases(get_space(server))
        service = server.exports[LEASES_OID].obj
        assert service.stats["expired"] == 1
        assert service.stats["reclaimed"] == 1
