"""Tests for the caching proxy: hits, TTL, invalidation, coherence."""


import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.core.policies.caching import CachingProxy, invalidated_values
from repro.iface.interface import Operation
from repro.metrics.counters import MessageWindow


def deploy(server, policy_config):
    store = KVStore()
    get_space(server).export(store, policy="caching", config=policy_config)
    repro.register(server, "kv", store)
    return store


class TestReadCaching:
    def test_repeat_reads_hit_cache(self, pair):
        system, server, client = pair
        deploy(server, {"invalidation": True})
        proxy = repro.bind(client, "kv")
        proxy.put("k", 1)
        with MessageWindow(system) as window:
            first = proxy.get("k")
            second = proxy.get("k")
            third = proxy.get("k")
        assert first == second == third == 1
        assert window.report.messages == 2, "one round trip, two hits"
        assert proxy.proxy_stats["hits"] == 2

    def test_cache_hit_is_fast(self, pair):
        system, server, client = pair
        deploy(server, {"invalidation": True})
        proxy = repro.bind(client, "kv")
        proxy.get("k")
        before = client.now
        proxy.get("k")
        assert client.now - before < system.costs.ipc_latency

    def test_distinct_keys_cached_separately(self, pair):
        system, server, client = pair
        store = deploy(server, {"invalidation": True})
        store.data.update(a=1, b=2)
        proxy = repro.bind(client, "kv")
        assert proxy.get("a") == 1
        assert proxy.get("b") == 2
        assert proxy.proxy_stats["misses"] == 2

    def test_readonly_with_kwargs_bypasses_cache(self, pair):
        system, server, client = pair
        deploy(server, {"invalidation": True})
        proxy = repro.bind(client, "kv")
        proxy.get(key="k")
        proxy.get(key="k")
        assert proxy.proxy_stats["hits"] == 0


class TestOwnWrites:
    def test_own_write_invalidates_affected_key(self, pair):
        system, server, client = pair
        deploy(server, {"invalidation": False, "ttl": None})
        proxy = repro.bind(client, "kv")
        proxy.put("k", 1)
        assert proxy.get("k") == 1
        proxy.put("k", 2)
        assert proxy.get("k") == 2, "stale cache would return 1"

    def test_own_write_keeps_unrelated_keys(self, pair):
        system, server, client = pair
        deploy(server, {"invalidation": False, "ttl": None})
        proxy = repro.bind(client, "kv")
        proxy.put("a", 1)
        proxy.put("b", 2)
        proxy.get("a")
        proxy.get("b")
        proxy.put("a", 3)
        with MessageWindow(system) as window:
            assert proxy.get("b") == 2
        assert window.report.messages == 0, "b must still be cached"

    def test_delete_invalidates(self, pair):
        system, server, client = pair
        deploy(server, {"invalidation": False, "ttl": None})
        proxy = repro.bind(client, "kv")
        proxy.put("k", 1)
        proxy.get("k")
        proxy.delete("k")
        assert proxy.get("k") is None


class TestTtl:
    def test_entries_expire(self, pair):
        system, server, client = pair
        store = deploy(server, {"invalidation": False, "ttl": 0.01})
        proxy = repro.bind(client, "kv")
        proxy.put("k", 1)
        proxy.get("k")
        store.data["k"] = 99           # out-of-band server change
        client.clock.advance(0.02)     # beyond the TTL
        assert proxy.get("k") == 99

    def test_entries_survive_within_ttl(self, pair):
        system, server, client = pair
        store = deploy(server, {"invalidation": False, "ttl": 10.0})
        proxy = repro.bind(client, "kv")
        proxy.get("k")
        store.data["k"] = 99
        assert proxy.get("k") is None, "within TTL the stale value stands"


class TestServerInvalidation:
    def test_other_clients_cache_is_invalidated(self, star):
        system, server, clients = star
        deploy(server, {"invalidation": True})
        a = repro.bind(clients[0], "kv")
        b = repro.bind(clients[1], "kv")
        a.put("k", 1)
        assert b.get("k") == 1
        a.put("k", 2)
        assert b.get("k") == 2, "b's cache entry must have been invalidated"

    def test_uncached_writer_also_triggers_invalidation(self, star):
        system, server, clients = star
        deploy(server, {"invalidation": True})
        reader = repro.bind(clients[0], "kv")
        reader.put("k", 1)
        assert reader.get("k") == 1
        # A plain write arriving via a different client's caching proxy.
        writer = repro.bind(clients[2], "kv")
        writer.put("k", 7)
        assert reader.get("k") == 7

    def test_callback_registered_and_unregistered(self, pair):
        system, server, client = pair
        store = deploy(server, {"invalidation": True})
        entry = get_space(server).entry(get_space(server).ref_of(store).oid)
        control = entry.mutation_hooks[0]._control
        proxy = repro.bind(client, "kv")
        proxy.get("k")
        assert control.subscribers == 1
        get_space(client).discard(proxy)
        assert control.subscribers == 0

    def test_invalidation_messages_are_oneway(self, star):
        system, server, clients = star
        deploy(server, {"invalidation": True})
        a = repro.bind(clients[0], "kv")
        b = repro.bind(clients[1], "kv")
        b.get("k")
        mark = system.trace.mark()
        a.put("k", 5)
        labels = [ev.label for ev in system.trace.since(mark)
                  if ev.kind == "send"]
        assert any(label.startswith("one:") for label in labels)


class TestInvalidatedValues:
    def test_named_parameter(self):
        op = Operation("put", ("key", "value"), invalidates=("key",))
        assert invalidated_values(op, ("k1", 5), {}) == ["k1"]

    def test_named_parameter_via_kwargs(self):
        op = Operation("put", ("key", "value"), invalidates=("key",))
        assert invalidated_values(op, (), {"key": "k2", "value": 5}) == ["k2"]

    def test_no_metadata_means_flush_all(self):
        op = Operation("mutate", ("a",))
        assert invalidated_values(op, ("x",), {}) == ["*"]

    def test_star_means_flush_all(self):
        op = Operation("clear", (), invalidates=("*",))
        assert invalidated_values(op, (), {}) == ["*"]


class TestNoHandshakeFallback:
    def test_ref_passed_by_value_degrades_to_ttl(self, pair):
        """A caching ref arriving as an argument still works (TTL mode)."""
        system, server, client = pair
        store = deploy(server, {"invalidation": True})
        holder = KVStore()
        repro.register(server, "holder", holder)
        holder_proxy = repro.bind(client, "holder")
        # Server stores a reference to the cached store under "it":
        holder.data["it"] = store
        got = holder_proxy.get("it")
        assert isinstance(got, CachingProxy)
        got.put("z", 1)
        assert got.get("z") == 1
