"""Tests for the replicated proxy: routing, quorums, failover."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.policies.replicating import ReplicatedProxy, replicate
from repro.kernel.errors import DistributionError
from repro.metrics.counters import MessageWindow


@pytest.fixture
def group(star):
    """3-replica KV group registered as 'kv'; returns (system, clients)."""
    system, server, clients = star
    ref = replicate([server, clients[1], clients[2]], KVStore, write_quorum=2)
    repro.register(server, "kv", ref)
    return system, server, clients


class TestRouting:
    def test_client_gets_replicated_proxy(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        assert isinstance(proxy, ReplicatedProxy)

    def test_write_reaches_all_replicas(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        with MessageWindow(system) as window:
            proxy.put("k", 1)
        assert window.report.messages == 6, "3 replicas x 1 round trip"

    def test_read_touches_one_replica(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        with MessageWindow(system) as window:
            assert proxy.get("k") == 1
        assert window.report.messages == 2

    def test_read_your_writes_everywhere(self, group):
        system, server, clients = group
        writer = repro.bind(clients[0], "kv")
        writer.put("k", "fresh")
        # Force reads from each replica in turn via the roundrobin policy.
        rr = repro.bind(clients[0], "kv")
        rr.proxy_config["read_policy"] = "roundrobin"
        assert [rr.get("k") for _ in range(3)] == ["fresh"] * 3

    def test_co_located_replica_served_by_fast_path(self, group):
        system, server, clients = group
        # clients[1] hosts a replica: nearest read should be same-context.
        proxy = repro.bind(clients[1], "kv")
        proxy.put("k", 1)
        with MessageWindow(system) as window:
            proxy.get("k")
        assert window.report.messages == 0


class TestFailover:
    def test_read_fails_over_on_crash(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        server.node.crash()
        assert proxy.get("k") == 1
        assert proxy.proxy_stats["read_failovers"] >= 0

    def test_write_succeeds_with_quorum(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        server.node.crash()   # 2 of 3 replicas remain; quorum is 2
        assert proxy.put("k", 2) is True

    def test_write_fails_below_quorum(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        server.node.crash()
        clients[1].node.crash()   # only 1 replica left < quorum 2
        with pytest.raises(DistributionError):
            proxy.put("k", 2)
        assert proxy.proxy_stats["write_failures"] == 1

    def test_recovery_after_restart(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        server.node.crash()
        clients[1].node.crash()
        with pytest.raises(DistributionError):
            proxy.put("k", 2)
        server.node.restart()
        clients[1].node.restart()
        assert proxy.put("k", 3) is True


class TestDeployment:
    def test_replicate_needs_contexts(self):
        with pytest.raises(ValueError):
            replicate([], KVStore)

    def test_single_replica_group_works(self, star):
        system, server, clients = star
        ref = replicate([server], KVStore)
        repro.register(server, "solo", ref)
        proxy = repro.bind(clients[0], "solo")
        proxy.put("k", 1)
        assert proxy.get("k") == 1

    def test_group_ref_carries_policy(self, star):
        system, server, clients = star
        ref = replicate([server, clients[1]], KVStore)
        assert ref.policy == "replicated"

    def test_principle_holds(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        proxy.get("k")
        repro.assert_principle(system)
