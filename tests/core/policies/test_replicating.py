"""Tests for the replicated proxy: routing, quorums, failover."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.apps.locks import LockService
from repro.core.policies.replicating import ReplicatedProxy, replicate
from repro.core.service import Service
from repro.iface.interface import operation
from repro.kernel.errors import ConfigurationError, DistributionError
from repro.metrics.counters import MessageWindow


@pytest.fixture
def group(star):
    """3-replica KV group registered as 'kv'; returns (system, clients)."""
    system, server, clients = star
    ref = replicate([server, clients[1], clients[2]], KVStore, write_quorum=2)
    repro.register(server, "kv", ref)
    return system, server, clients


@pytest.fixture
def quorum_group(star):
    """3-replica versioned-quorum KV group (W=2, R=2, per-key versions)."""
    system, server, clients = star
    ref = replicate([server, clients[1], clients[2]], KVStore,
                    write_quorum=2, read_quorum=2, version_key="arg0")
    repro.register(server, "qkv", ref)
    return system, server, clients


class Flaky(Service):
    """A service whose writes can be made to raise on one replica only."""

    default_policy = "stub"

    def __init__(self):
        self.log = []
        self.fail = False

    @operation
    def record(self, item):
        if self.fail:
            raise ValueError("replica refuses")
        self.log.append(item)
        return len(self.log)

    @operation(readonly=True)
    def entries(self):
        return list(self.log)


class TestRouting:
    def test_client_gets_replicated_proxy(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        assert isinstance(proxy, ReplicatedProxy)

    def test_write_reaches_all_replicas(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        with MessageWindow(system) as window:
            proxy.put("k", 1)
        assert window.report.messages == 6, "3 replicas x 1 round trip"

    def test_read_touches_one_replica(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        with MessageWindow(system) as window:
            assert proxy.get("k") == 1
        assert window.report.messages == 2

    def test_read_your_writes_everywhere(self, group):
        system, server, clients = group
        writer = repro.bind(clients[0], "kv")
        writer.put("k", "fresh")
        # Force reads from each replica in turn via the roundrobin policy.
        rr = repro.bind(clients[0], "kv")
        rr.proxy_config["read_policy"] = "roundrobin"
        assert [rr.get("k") for _ in range(3)] == ["fresh"] * 3

    def test_co_located_replica_served_by_fast_path(self, group):
        system, server, clients = group
        # clients[1] hosts a replica: nearest read should be same-context.
        proxy = repro.bind(clients[1], "kv")
        proxy.put("k", 1)
        with MessageWindow(system) as window:
            proxy.get("k")
        assert window.report.messages == 0


class TestFailover:
    def test_read_fails_over_on_crash(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        server.node.crash()
        assert proxy.get("k") == 1
        assert proxy.proxy_stats["read_failovers"] >= 0

    def test_write_succeeds_with_quorum(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        server.node.crash()   # 2 of 3 replicas remain; quorum is 2
        assert proxy.put("k", 2) is True

    def test_write_fails_below_quorum(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        server.node.crash()
        clients[1].node.crash()   # only 1 replica left < quorum 2
        with pytest.raises(DistributionError):
            proxy.put("k", 2)
        assert proxy.proxy_stats["write_failures"] == 1

    def test_recovery_after_restart(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        server.node.crash()
        clients[1].node.crash()
        with pytest.raises(DistributionError):
            proxy.put("k", 2)
        server.node.restart()
        clients[1].node.restart()
        assert proxy.put("k", 3) is True


class TestDeployment:
    def test_replicate_needs_contexts(self):
        with pytest.raises(ValueError):
            replicate([], KVStore)

    def test_single_replica_group_works(self, star):
        system, server, clients = star
        ref = replicate([server], KVStore)
        repro.register(server, "solo", ref)
        proxy = repro.bind(clients[0], "solo")
        proxy.put("k", 1)
        assert proxy.get("k") == 1

    def test_group_ref_carries_policy(self, star):
        system, server, clients = star
        ref = replicate([server, clients[1]], KVStore)
        assert ref.policy == "replicated"

    def test_principle_holds(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        proxy.get("k")
        repro.assert_principle(system)


class TestQuorumValidation:
    """Quorum bounds are configuration errors, at deploy and at call time.

    Regression: ``write_quorum=0`` used to let a write that reached *no*
    replica "succeed" (returning ``None``), and ``write_quorum > N`` used
    to fail every write with a misleading distribution error.
    """

    @pytest.mark.parametrize("quorum", [0, -2, 4])
    def test_deploy_rejects_out_of_range_write_quorum(self, star, quorum):
        system, server, clients = star
        with pytest.raises(ConfigurationError):
            replicate([server, clients[1], clients[2]], KVStore,
                      write_quorum=quorum)

    @pytest.mark.parametrize("quorum", [0, -1, 4])
    def test_deploy_rejects_out_of_range_read_quorum(self, star, quorum):
        system, server, clients = star
        with pytest.raises(ConfigurationError):
            replicate([server, clients[1], clients[2]], KVStore,
                      read_quorum=quorum)

    @pytest.mark.parametrize("quorum", [0, -1, 5])
    def test_call_time_rejects_injected_write_quorum(self, group, quorum):
        # A config that dodged deploy validation (hand-edited, or shipped
        # by an older server) must still fail closed at the proxy.
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        proxy.proxy_config["write_quorum"] = quorum
        with pytest.raises(ConfigurationError):
            proxy.put("k", 1)

    def test_call_time_rejects_injected_read_quorum(self, quorum_group):
        system, server, clients = quorum_group
        proxy = repro.bind(clients[0], "qkv")
        proxy.proxy_config["read_quorum"] = 0
        with pytest.raises(ConfigurationError):
            proxy.get("k")

    def test_zero_quorum_write_does_not_silently_succeed(self, group):
        # The original bug: all replicas down + write_quorum=0 returned
        # None as if the write had happened.
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        server.node.crash()
        clients[1].node.crash()
        clients[2].node.crash()
        proxy.proxy_config["write_quorum"] = 0
        with pytest.raises(ConfigurationError):
            proxy.put("k", "ghost")


class TestPartialWriteFanout:
    """Regression: an application exception from an early replica used to
    abort the write-all loop, leaving later replicas without the write
    (silent divergence).  The fan-out must complete before re-raising."""

    @pytest.fixture
    def flaky_group(self, star):
        system, server, clients = star
        instances = []

        def factory():
            obj = Flaky()
            instances.append(obj)
            return obj

        ref = replicate([server, clients[1], clients[2]], factory,
                        write_quorum=2)
        repro.register(server, "flaky", ref)
        return system, clients, instances

    def test_fanout_completes_past_a_raising_replica(self, flaky_group):
        system, clients, instances = flaky_group
        instances[0].fail = True    # only the first replica raises
        proxy = repro.bind(clients[0], "flaky")
        with pytest.raises(ValueError):
            proxy.record("x")
        assert instances[1].log == ["x"], "fan-out must not stop early"
        assert instances[2].log == ["x"]
        assert proxy.proxy_stats["app_errors"] == 1

    def test_app_error_beats_quorum_success(self, flaky_group):
        # Even with enough clean acks for the quorum, the application
        # exception is the write's outcome and must surface.
        system, clients, instances = flaky_group
        instances[1].fail = True
        proxy = repro.bind(clients[0], "flaky")
        with pytest.raises(ValueError):
            proxy.record("y")
        assert instances[0].log == ["y"]
        assert instances[2].log == ["y"]

    def test_clean_writes_still_return_first_result(self, flaky_group):
        system, clients, instances = flaky_group
        proxy = repro.bind(clients[0], "flaky")
        assert proxy.record("z") == 1
        assert proxy.proxy_stats["app_errors"] == 0


class TestEmptyResolutionNotMemoized:
    """Regression: an empty replica resolution was cached forever, pinning
    the proxy to plain forwarding even after the list arrived."""

    def test_empty_resolution_is_retried(self, group):
        system, server, clients = group
        proxy = repro.bind(clients[0], "kv")
        saved = proxy.proxy_config.pop("replicas")
        proxy.proxy_handshaken = True    # keep the handshake from refetching
        assert proxy._resolve_replicas() == []
        assert proxy._replicas is None, "emptiness must not be memoised"
        proxy.proxy_config["replicas"] = saved
        assert len(proxy._resolve_replicas()) == 3
        assert proxy._replicas is not None


class TestVersionedQuorum:
    def test_read_your_writes_across_clients(self, quorum_group):
        system, server, clients = quorum_group
        writer = repro.bind(clients[0], "qkv")
        reader = repro.bind(clients[2], "qkv")
        reader.proxy_config["read_policy"] = "roundrobin"
        assert writer.put("k", "fresh") is True
        assert [reader.get("k") for _ in range(3)] == ["fresh"] * 3

    def test_stale_replica_is_read_repaired(self, quorum_group):
        system, server, clients = quorum_group
        proxy = repro.bind(clients[0], "qkv")
        proxy.proxy_config["read_policy"] = "roundrobin"
        proxy.put("k", 1)
        clients[2].node.crash()     # third replica misses the next write
        proxy.put("k", 2)
        clients[2].node.restart()
        values = [proxy.get("k") for _ in range(3)]
        assert values == [2, 2, 2], "a repaired read must return the newest"
        assert proxy.proxy_stats["read_repairs"] >= 1

    def test_write_fails_below_quorum(self, quorum_group):
        system, server, clients = quorum_group
        proxy = repro.bind(clients[0], "qkv")
        proxy.put("k", 1)
        clients[1].node.crash()
        clients[2].node.crash()     # primary alone: 1 < W=2
        with pytest.raises(DistributionError):
            proxy.put("k", 2)
        assert proxy.proxy_stats["write_failures"] >= 1

    def test_read_fails_below_read_quorum(self, quorum_group):
        system, server, clients = quorum_group
        proxy = repro.bind(clients[0], "qkv")
        proxy.put("k", 1)
        clients[1].node.crash()
        clients[2].node.crash()     # one answer < R=2
        with pytest.raises(DistributionError):
            proxy.get("k")
        assert proxy.proxy_stats["read_failures"] >= 1

    def test_group_recovers_after_restart(self, quorum_group):
        system, server, clients = quorum_group
        proxy = repro.bind(clients[0], "qkv")
        proxy.put("k", 1)
        clients[1].node.crash()
        clients[2].node.crash()
        with pytest.raises(DistributionError):
            proxy.put("k", 2)
        clients[1].node.restart()
        clients[2].node.restart()
        assert proxy.put("k", 3) is True
        assert proxy.get("k") == 3

    def test_app_exception_does_not_diverge_the_group(self, star):
        # The primary executes first and raises *before* any fan-out, so
        # a raising write leaves every replica untouched and in agreement.
        system, server, clients = star
        ref = replicate([server, clients[1], clients[2]], LockService,
                        write_quorum=2, read_quorum=2, version_key="arg0")
        repro.register(server, "qlock", ref)
        proxy = repro.bind(clients[0], "qlock")
        with pytest.raises(PermissionError):
            proxy.release("m", "nobody")
        assert proxy.try_acquire("m", "alice") is True
        assert proxy.holder("m") == "alice"

    def test_principle_holds_for_quorum_traffic(self, quorum_group):
        system, server, clients = quorum_group
        proxy = repro.bind(clients[0], "qkv")
        proxy.put("k", 1)
        proxy.get("k")
        repro.assert_principle(system)
