"""Tests for the sharded proxy: routing, fencing, rebalancing, composition."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.core.policies.composite import CompositeProxy
from repro.core.policies.sharding import ShardedProxy, shard
from repro.iface.interface import Interface
from repro.kernel.errors import ConfigurationError, DistributionError
from repro.migration.mover import ensure_mover
from repro.naming.bootstrap import install_name_service, name_service_proxy
from repro.wire import shards


def _system(shard_count, clients=2, extra_nodes=()):
    """(system, shard_ctxs, client_ctxs, extras) with plain node names."""
    system = repro.make_system(seed=7)
    shard_ctxs = [system.add_node(f"s{i}").create_context("main")
                  for i in range(shard_count)]
    client_ctxs = [system.add_node(f"c{i}").create_context("main")
                   for i in range(clients)]
    extras = [system.add_node(name).create_context("main")
              for name in extra_nodes]
    return system, shard_ctxs, client_ctxs, extras


def _bind(ctx, ref):
    return get_space(ctx).bind_ref(ref, handshake=True)


def _owner(state, key):
    return state.owner_of(shards.stable_hash(key))


def _keys_by_owner(state, wanted, count=400):
    """The first key name per wanted shard index, scanning k0..k399."""
    found = {}
    for i in range(count):
        key = f"k{i}"
        owner = _owner(state, key)
        if owner in wanted and owner not in found:
            found[owner] = key
        if len(found) == len(wanted):
            break
    return found


class TestConstructionValidation:
    def test_no_contexts(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            shard([], KVStore)

    def test_duplicate_ring_points(self):
        _sys, (ctx,), _clients, _x = _system(1)
        with pytest.raises(ConfigurationError, match="duplicate"):
            shard([ctx], KVStore, ring=[[10, 0], [10, 0]])

    def test_out_of_range_ring_owner(self):
        _sys, (ctx,), _clients, _x = _system(1)
        with pytest.raises(ConfigurationError, match="outside"):
            shard([ctx], KVStore, ring=[[10, 0], [20, 3]])

    def test_non_positive_epoch(self):
        _sys, (ctx,), _clients, _x = _system(1)
        with pytest.raises(ConfigurationError, match="ring_epoch"):
            shard([ctx], KVStore, ring_epoch=0)

    def test_negative_shard_key(self):
        _sys, (ctx,), _clients, _x = _system(1)
        with pytest.raises(ConfigurationError, match="shard_key"):
            shard([ctx], KVStore, shard_key=-1)

    def test_zero_vnodes(self):
        _sys, (ctx,), _clients, _x = _system(1)
        with pytest.raises(ConfigurationError, match="vnodes"):
            shard([ctx], KVStore, vnodes=0)

    def test_proxy_construction_rejects_broken_config(self):
        # The proxy validates at construction, not first call: a client
        # handed a corrupt map fails to bind, not to route.
        _sys, ctxs, (client, _), _x = _system(2)
        proxy = _bind(client, shard(ctxs, KVStore))
        for corrupt in ({"shards": []},
                        {**proxy.proxy_config, "ring_epoch": 0},
                        {**proxy.proxy_config, "shard_key": -2},
                        {**proxy.proxy_config, "ring": [[5, 0], [5, 1]]}):
            with pytest.raises(ConfigurationError):
                ShardedProxy(proxy.proxy_context, proxy.proxy_ref,
                             proxy.proxy_interface, corrupt)


class TestRouting:
    def test_client_gets_sharded_proxy_with_zero_client_change(self):
        _sys, ctxs, (client, _), _x = _system(2)
        proxy = _bind(client, shard(ctxs, KVStore))
        assert isinstance(proxy, ShardedProxy)
        proxy.put("k", "v")
        assert proxy.get("k") == "v"

    def test_keys_land_on_their_ring_owner(self):
        _sys, ctxs, (client, _), _x = _system(4)
        proxy = _bind(client, shard(ctxs, KVStore))
        state = shards.ShardState(-1, *proxy.proxy_shard_map(sync=False))
        for i in range(40):
            proxy.put(f"k{i}", i)
        stores = [get_space(ctx).entry(spec[1]).obj
                  for ctx, spec in zip(ctxs, state.shards)]
        for i in range(40):
            owner = _owner(state, f"k{i}")
            for index, store in enumerate(stores):
                held = store.get(f"k{i}")
                assert (held == i) == (index == owner)

    def test_ring_is_deterministic_across_deployments(self):
        _sys, ctxs, _clients, _x = _system(4)
        sys2, ctxs2, (client2, _), _x2 = _system(4)
        ref1, ref2 = shard(ctxs, KVStore), shard(ctxs2, KVStore)
        space1 = get_space(ctxs[0])
        space2 = get_space(ctxs2[0])
        ring1 = space1.entry(ref1.oid).policy_config["ring"]
        ring2 = space2.entry(ref2.oid).policy_config["ring"]
        assert ring1 == ring2 == shards.default_ring(4)

    def test_single_shard_is_byte_identical_to_stub(self):
        # The degenerate ring sends plain calls: same wire events, same
        # virtual time as a stub binding to the object directly.
        def build(deploy):
            system = repro.make_system(seed=7)
            server = system.add_node("server").create_context("main")
            client = system.add_node("client").create_context("main")
            proxy = _bind(client, deploy(server))
            proxy.put("warm", 0)    # one-time setup outside the window
            return system, client, proxy

        def stub_deploy(server):
            return get_space(server).export(
                KVStore(), interface=Interface.of(KVStore), policy="stub")

        def drive(system, client, proxy):
            mark = system.trace.mark()
            t0 = client.clock.now
            for i in range(12):
                proxy.put(f"k{i % 3}", i)
                assert proxy.get(f"k{i % 3}") == i
            events = [(ev.kind, ev.src, ev.dst, ev.label, ev.size)
                      for ev in system.trace.since(mark)]
            return events, client.clock.now - t0

        sharded = drive(*build(lambda server: shard([server], KVStore)))
        plain = drive(*build(stub_deploy))
        assert sharded[0] == plain[0]
        assert sharded[1] == pytest.approx(plain[1], rel=1e-12)


class TestRebalance:
    def test_mid_call_redirect_and_in_band_heal(self):
        system, ctxs, (writer, reader, healer), _x = _system(2, clients=3)
        ref = shard(ctxs, KVStore)
        operator = _bind(system.add_node("op").create_context("main"), ref)
        proxies = [_bind(ctx, ref) for ctx in (writer, reader, healer)]
        old = shards.ShardState(-1, *operator.proxy_shard_map(sync=False))
        for i in range(400):
            proxies[0].put(f"k{i}", i)
        assert operator.proxy_rebalance() is not None
        new = shards.ShardState(-1, *operator.proxy_shard_map(sync=False))
        assert new.epoch == old.epoch + 1
        moved = [f"k{i}" for i in range(400)
                 if _owner(old, f"k{i}") != _owner(new, f"k{i}")]
        kept = [f"k{i}" for i in range(400)
                if _owner(old, f"k{i}") == _owner(new, f"k{i}")]
        assert moved, "the rebalance sweep must move some keys"
        # A stale client calling a *moved* key is fenced with the new map,
        # re-routes, and still reads its data (the arc moved data-and-all).
        assert proxies[1].get(moved[0]) == int(moved[0][1:])
        assert proxies[1].proxy_stats["shard_redirects"] == 1
        # A stale client calling an *unmoved* key is served where it stands
        # and healed in-band — no redirect round trip.
        assert proxies[2].get(kept[0]) == int(kept[0][1:])
        assert proxies[2].proxy_stats["shard_heals"] == 1
        assert proxies[2].proxy_stats["shard_redirects"] == 0
        # Both adopted the new epoch: the next calls are fence-free.
        for proxy in proxies[1:]:
            stats = dict(proxy.proxy_stats)
            assert proxy.get(moved[0]) == int(moved[0][1:])
            assert proxy.proxy_stats["shard_redirects"] == \
                stats["shard_redirects"]
            assert proxy.proxy_stats["shard_heals"] == stats["shard_heals"]

    def test_split_moves_arcs_to_the_target(self):
        _sys, ctxs, (client, _), _x = _system(2)
        ref = shard(ctxs, KVStore)
        operator = _bind(client, ref)
        for i in range(100):
            operator.put(f"k{i}", i)
        old = shards.ShardState(-1, *operator.proxy_shard_map(sync=False))
        moved = operator.proxy_split(0, 1)
        assert moved > 0
        new = shards.ShardState(-1, *operator.proxy_shard_map(sync=False))
        assert new.epoch > old.epoch
        donated = sum(1 for i in range(100)
                      if _owner(old, f"k{i}") == 0
                      and _owner(new, f"k{i}") == 1)
        assert donated > 0
        for i in range(100):
            assert operator.get(f"k{i}") == i

    def test_move_shard_relocates_the_object(self):
        system, ctxs, (client, _), (spare,) = _system(
            2, extra_nodes=("spare",))
        ensure_mover(get_space(spare))
        ref = shard(ctxs, KVStore)
        operator = _bind(client, ref)
        stale = _bind(system.add_node("late").create_context("main"), ref)
        for i in range(40):
            operator.put(f"k{i}", i)
        state = shards.ShardState(-1, *operator.proxy_shard_map(sync=False))
        key = _keys_by_owner(state, {0})[0]
        new_ref = operator.proxy_move_shard(0, spare.context_id)
        assert new_ref.context_id == spare.context_id
        assert operator.proxy_stats["shard_moves"] == 1
        assert operator.get(key) == int(key[1:])
        # A client still holding the pre-move map follows the forward (or
        # the fence) to the new home and reads the same data.
        assert stale.get(key) == int(key[1:])


class TestComposition:
    def test_resilient_over_sharded_stacks(self):
        _sys, ctxs, (client, _), _x = _system(2)
        ref = shard(ctxs, KVStore, extra_layers=["resilient"])
        proxy = _bind(client, ref)
        assert isinstance(proxy, CompositeProxy)
        proxy.put("k", "v")
        assert proxy.get("k") == "v"

    def test_replicated_shards(self):
        _sys, _ctxs, (client, _), extras = _system(
            0, extra_nodes=("r0", "r1", "r2", "r3"))
        ref = shard([extras[:2], extras[2:]], KVStore,
                    replicate_with={"write_quorum": 2})
        proxy = _bind(client, ref)
        for i in range(20):
            proxy.put(f"k{i}", i)
        for i in range(20):
            assert proxy.get(f"k{i}") == i

    def test_one_shard_all_replicas_down(self):
        _sys, _ctxs, (client, _), extras = _system(
            0, extra_nodes=("r0", "r1", "r2", "r3"))
        ref = shard([extras[:2], extras[2:]], KVStore,
                    replicate_with={"write_quorum": 2},
                    extra_layers=["resilient"])
        proxy = _bind(client, ref)
        state = shards.ShardState(
            -1, 1, shards.default_ring(2),
            [["a"], ["b"]])    # owners only; specs unused for routing
        keys = _keys_by_owner(state, {0, 1})
        for key in keys.values():
            proxy.put(key, "v")
        extras[2].node.crash()
        extras[3].node.crash()
        # The surviving shard keeps serving its keys …
        assert proxy.get(keys[0]) == "v"
        # … while the dead shard's keys fail loudly, resilience or not:
        # no other shard owns them, so there is nowhere to fail over to.
        with pytest.raises(DistributionError):
            proxy.get(keys[1])


class TestNaming:
    def test_publish_and_bind_through_the_registry(self):
        system, ctxs, (client, opctx), _x = _system(2)
        install_name_service(ctxs[0])
        registry = name_service_proxy(ctxs[0])
        shard(ctxs, KVStore, registry=registry, name="kv")
        proxy = repro.bind(client, "kv")
        assert isinstance(proxy, ShardedProxy)
        proxy.put("k", "v")
        assert proxy.get("k") == "v"
        ring_map = name_service_proxy(client).lookup("kv.ring")
        assert ring_map[0] == 1
        operator = repro.bind(opctx, "kv")
        assert operator.proxy_rebalance() is not None
        operator.proxy_publish(name_service_proxy(opctx), "kv")
        ring_map = name_service_proxy(client).lookup("kv.ring")
        assert ring_map[0] == 2
