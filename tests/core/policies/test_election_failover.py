"""Integration tests for leader election: failover, fencing, anti-entropy.

Every test deploys a 3-replica versioned quorum group (W=2, R=2) with
``elect=True`` and drives it through the exact edge cases ISSUE 6 calls
out: primary crash and failover, the old primary rejoining after a long
partition, lease expiry mid-traffic, co-located reads during an election
window, and simultaneous candidacy from rival proxies.
"""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.policies.replicating import replicate
from repro.failures.election import DEFAULT_LEASE_TTL
from repro.failures.injectors import begin_crash, begin_partition
from repro.kernel.errors import DistributionError


@pytest.fixture
def elected(star):
    """3-replica elected KV group on (server, clients[1], clients[2])."""
    system, server, clients = star
    ref = replicate([server, clients[1], clients[2]], KVStore,
                    write_quorum=2, read_quorum=2, version_key="arg0",
                    elect=True)
    repro.register(server, "ekv", ref)
    return system, server, clients


def replica_nodes(server, clients):
    return [server.node.name, clients[1].node.name, clients[2].node.name]


class TestFailover:
    def test_primary_crash_elects_and_writes_resume(self, elected):
        system, server, clients = elected
        proxy = repro.bind(clients[0], "ekv")
        proxy.put("k", 1)
        t0 = clients[0].clock.now
        restore = begin_crash(system, server.node.name)
        proxy.put("k", 2)    # rides out the failover inside one invoke
        window = clients[0].clock.now - t0
        assert proxy.get("k") == 2
        assert proxy._term == 2
        assert proxy._leader != 0
        assert proxy.proxy_stats["elections_won"] == 1
        assert proxy.proxy_stats["terms_started"] >= 1
        # Bounded unavailability: the lease TTL plus election round-trips
        # (RPC retry budgets against the dead node dominate the slack).
        assert window < DEFAULT_LEASE_TTL + 1.0
        restore()

    def test_primary_partition_elects_too(self, elected):
        system, server, clients = elected
        proxy = repro.bind(clients[0], "ekv")
        proxy.put("k", 1)
        nodes = set(replica_nodes(server, clients)) | {clients[0].node.name}
        restore = begin_partition(
            system, [{server.node.name}, nodes - {server.node.name}])
        proxy.put("k", 2)
        assert proxy.get("k") == 2
        assert proxy._term == 2
        restore()

    def test_writes_keep_failing_without_a_majority(self, elected):
        system, server, clients = elected
        proxy = repro.bind(clients[0], "ekv")
        proxy.put("k", 1)
        restores = [begin_crash(system, server.node.name),
                    begin_crash(system, clients[1].node.name)]
        with pytest.raises(DistributionError):
            proxy.put("k", 2)    # 1 of 3 alive: no election quorum
        for restore in restores:
            restore()


class TestFencing:
    def test_old_primary_rejoining_is_fenced(self, elected):
        system, server, clients = elected
        ahead = repro.bind(clients[0], "ekv")
        laggard = system.add_node("laggard").create_context("main")
        behind = repro.bind(laggard, "ekv")
        ahead.put("k", 1)
        behind.get("k")    # warm the stale proxy's replica resolution
        restore = begin_crash(system, server.node.name)
        ahead.put("k", 2)    # elects term 2 away from replica 0
        restore()
        # The rejoined old primary still believes it leads term 1; the
        # stale proxy still addresses it.  Its next write must be fenced
        # and redirected, never silently accepted under the old term.
        assert behind._leader == 0
        behind.put("k", 3)
        assert behind._term == 2
        assert behind._leader == ahead._leader
        assert behind.proxy_stats["fencing_rejects"] >= 1
        assert ahead.get("k") == 3

    def test_rejoined_primary_catches_up_via_anti_entropy(self, elected):
        system, server, clients = elected
        proxy = repro.bind(clients[0], "ekv")
        proxy.put("k", 1)
        restore = begin_crash(system, server.node.name)
        proxy.put("k", 2)
        proxy.put("j", 9)
        restore()
        swept = proxy.proxy_anti_entropy()
        assert swept["keys"] >= 1
        assert swept["bytes"] > 0
        assert proxy.proxy_stats["anti_entropy_runs"] == 1
        assert proxy.proxy_stats["anti_entropy_keys"] == swept["keys"]
        # The old primary now holds every entry: reads served by it agree.
        assert proxy.get("k") == 2
        assert proxy.get("j") == 9

    def test_second_sweep_is_a_no_op(self, elected):
        system, server, clients = elected
        proxy = repro.bind(clients[0], "ekv")
        proxy.put("k", 1)
        proxy.proxy_anti_entropy()
        swept = proxy.proxy_anti_entropy()
        assert swept == {"keys": 0, "entries": 0, "bytes": 0}


class TestLeases:
    def test_lease_expiry_renews_without_an_election(self, elected):
        system, server, clients = elected
        proxy = repro.bind(clients[0], "ekv")
        proxy.put("k", 1)
        clients[0].clock.advance(DEFAULT_LEASE_TTL * 3)
        proxy.put("k", 2)    # leader alive: renewal, not a new term
        assert proxy._term == 1
        assert proxy.proxy_stats["lease_renewals"] >= 1
        assert proxy.proxy_stats["elections"] == 0
        assert proxy.get("k") == 2

    def test_renewals_keep_a_long_run_in_one_term(self, elected):
        system, server, clients = elected
        proxy = repro.bind(clients[0], "ekv")
        for index in range(8):
            proxy.put("k", index)
            clients[0].clock.advance(DEFAULT_LEASE_TTL)
        assert proxy._term == 1
        assert proxy.proxy_stats["lease_renewals"] >= 4


class TestElectionWindow:
    def test_co_located_reads_survive_the_window(self, elected):
        system, server, clients = elected
        proxy = repro.bind(clients[0], "ekv")
        co_located = repro.bind(clients[1], "ekv")    # shares replica 1
        proxy.put("k", 1)
        restore = begin_crash(system, server.node.name)
        # No election has run yet — the group is leaderless from every
        # proxy's point of view.  Reads are never fenced, so the
        # co-located client still gets quorum answers during the window.
        assert co_located.get("k") == 1
        assert co_located.proxy_stats["elections"] == 0
        restore()

    def test_simultaneous_candidacy_converges_on_one_leader(self, elected):
        system, server, clients = elected
        first = repro.bind(clients[0], "ekv")
        rival = system.add_node("rival").create_context("main")
        second = repro.bind(rival, "ekv")
        first.put("k", 1)
        second.get("k")
        restore = begin_crash(system, server.node.name)
        first.put("k", 2)     # first rival elects term 2
        second.put("k", 3)    # second rival must adopt, not double-elect
        assert first._term == 2
        assert second._term == 2
        assert first._leader == second._leader
        total_won = (first.proxy_stats["elections_won"]
                     + second.proxy_stats["elections_won"])
        assert total_won == 1, "one term, one winner"
        assert first.get("k") == 3
        restore()
