"""Tests for the composite policy: stacked proxy intelligences."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.kernel.errors import ConfigurationError
from repro.metrics.counters import MessageWindow


@pytest.fixture
def cached_replicas(star):
    """Caching stacked over a 3-way replica group, registered as 'kv'."""
    system, server, clients = star
    ref = repro.replicate([server, clients[1], clients[2]], KVStore,
                          write_quorum=2, extra_layers=["caching"])
    repro.register(server, "kv", ref)
    return system, server, clients


class TestCachingOverReplication:
    def test_layers_instantiated_in_order(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        proxy.get("warm")
        assert proxy.proxy_layers == ["CachingProxy", "ReplicatedProxy"]

    def test_reads_hit_cache_after_first(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        assert proxy.get("k") == 1
        with MessageWindow(system) as window:
            assert proxy.get("k") == 1
        assert window.report.messages == 0

    def test_writes_fan_out_to_replicas(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        with MessageWindow(system) as window:
            proxy.put("k", 1)
        assert window.report.messages >= 6

    def test_write_invalidates_outer_cache(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        proxy.get("k")
        proxy.put("k", 2)
        assert proxy.get("k") == 2

    def test_survives_replica_crash(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        server.node.crash()
        assert proxy.get("k") == 1

    def test_principle_holds(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        proxy.get("k")
        repro.assert_principle(system)


class TestConfiguration:
    def test_empty_layers_rejected(self, pair):
        system, server, client = pair
        store = KVStore()
        with pytest.raises(ConfigurationError):
            get_space(server).export(store, policy="composite",
                                     config={"layers": []})

    def test_nested_composite_rejected(self, pair):
        system, server, client = pair
        store = KVStore()
        with pytest.raises(ConfigurationError):
            get_space(server).export(
                store, policy="composite",
                config={"layers": ["composite", "stub"]})

    def test_unknown_layer_rejected(self, pair):
        system, server, client = pair
        store = KVStore()
        with pytest.raises(ConfigurationError):
            get_space(server).export(store, policy="composite",
                                     config={"layers": ["martian"]})

    def test_tracing_over_caching(self, pair):
        system, server, client = pair
        store = KVStore()
        get_space(server).export(
            store, policy="composite",
            config={"layers": ["tracing", "caching"],
                    "layer_configs": {"tracing": {"report_every": 1000},
                                      "caching": {"invalidation": True}}})
        repro.register(server, "kv", store)
        proxy = repro.bind(client, "kv")
        proxy.put("k", 1)
        for _ in range(4):
            assert proxy.get("k") == 1
        assert proxy.proxy_layers == ["TracingProxy", "CachingProxy"]
        tracer = proxy._build_stack()[0]
        assert tracer.proxy_trace["get"]["count"] == 4
