"""Tests for the composite policy: stacked proxy intelligences."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.kernel.errors import BindError, ConfigurationError
from repro.metrics.counters import MessageWindow


@pytest.fixture
def cached_replicas(star):
    """Caching stacked over a 3-way replica group, registered as 'kv'."""
    system, server, clients = star
    ref = repro.replicate([server, clients[1], clients[2]], KVStore,
                          write_quorum=2, extra_layers=["caching"])
    repro.register(server, "kv", ref)
    return system, server, clients


class TestCachingOverReplication:
    def test_layers_instantiated_in_order(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        proxy.get("warm")
        assert proxy.proxy_layers == ["CachingProxy", "ReplicatedProxy"]

    def test_reads_hit_cache_after_first(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        assert proxy.get("k") == 1
        with MessageWindow(system) as window:
            assert proxy.get("k") == 1
        assert window.report.messages == 0

    def test_writes_fan_out_to_replicas(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        with MessageWindow(system) as window:
            proxy.put("k", 1)
        assert window.report.messages >= 6

    def test_write_invalidates_outer_cache(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        proxy.get("k")
        proxy.put("k", 2)
        assert proxy.get("k") == 2

    def test_survives_replica_crash(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        server.node.crash()
        assert proxy.get("k") == 1

    def test_principle_holds(self, cached_replicas):
        system, server, clients = cached_replicas
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        proxy.get("k")
        repro.assert_principle(system)


class TestCrossClientCoherence:
    """A write through one client's stack must invalidate every other
    client's cache — including when the write lands on a replica stub
    entry rather than the group entry (the mirrored mutation hooks)."""

    @pytest.fixture
    def shared_group(self, star):
        system, server, clients = star
        ref = repro.replicate([server, clients[2]], KVStore,
                              extra_layers=["caching"])
        repro.register(server, "kv", ref)
        return system, server, clients, ref

    def test_remote_write_invalidates_other_clients_cache(self,
                                                          shared_group):
        system, server, clients, ref = shared_group
        reader = repro.bind(clients[0], "kv")
        writer = repro.bind(clients[1], "kv")
        reader.put("k", 1)
        assert reader.get("k") == 1    # now cached at the reader
        writer.put("k", 2)
        assert reader.get("k") == 2, \
            "reader served a stale cache entry after a remote write"
        assert writer.get("k") == 2

    def test_writes_in_both_directions_stay_coherent(self, shared_group):
        system, server, clients, ref = shared_group
        a = repro.bind(clients[0], "kv")
        b = repro.bind(clients[1], "kv")
        for round_no in range(3):
            a.put("k", ("a", round_no))
            assert b.get("k") == ("a", round_no)
            b.put("k", ("b", round_no))
            assert a.get("k") == ("b", round_no)

    def test_replica_entries_share_the_group_hooks(self, shared_group):
        system, server, clients, ref = shared_group
        group_entry = get_space(server).entry(ref.oid)
        assert group_entry.mutation_hooks, \
            "the caching layer should install a coherence hook on export"
        mirrored = 0
        for replica_ref in group_entry.policy_config["replicas"]:
            for ctx in (server, clients[2]):
                try:
                    entry = get_space(ctx).entry(replica_ref.oid)
                except BindError:
                    continue
                assert entry.mutation_hooks is group_entry.mutation_hooks
                mirrored += 1
        assert mirrored == 2


class TestResilientOverCaching:
    """Resilience stacked outside a cache: config must thread through the
    composite to the right layer, and cache hits must bypass the wire."""

    @pytest.fixture
    def guarded_cache(self, star):
        system, server, clients = star
        store = KVStore()
        get_space(server).export(
            store, policy="composite",
            config={"layers": ["resilient", "caching"],
                    "invalidation": True,
                    "retry": {"attempts": 2},
                    "stale_reads": False})
        repro.register(server, "kv", store)
        return system, server, clients

    def test_layers_instantiated_in_order(self, guarded_cache):
        system, server, clients = guarded_cache
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        assert proxy.proxy_layers == ["ResilientProxy", "CachingProxy"]

    def test_shared_config_reaches_the_resilient_layer(self, guarded_cache):
        system, server, clients = guarded_cache
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        resilient = proxy._build_stack()[0]
        assert resilient.proxy_retry.attempts == 2
        assert resilient.proxy_config["stale_reads"] is False

    def test_cache_hits_bypass_the_resilient_layer_wire(self, guarded_cache):
        system, server, clients = guarded_cache
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        assert proxy.get("k") == 1
        with MessageWindow(system) as window:
            assert proxy.get("k") == 1
        assert window.report.messages == 0

    def test_cached_read_survives_server_crash(self, guarded_cache):
        system, server, clients = guarded_cache
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        assert proxy.get("k") == 1
        server.node.crash()
        assert proxy.get("k") == 1

    def test_invalidation_still_works_through_the_stack(self, guarded_cache):
        system, server, clients = guarded_cache
        a = repro.bind(clients[0], "kv")
        b = repro.bind(clients[1], "kv")
        a.put("k", 1)
        assert b.get("k") == 1
        a.put("k", 2)
        assert b.get("k") == 2


class TestConfiguration:
    def test_empty_layers_rejected(self, pair):
        system, server, client = pair
        store = KVStore()
        with pytest.raises(ConfigurationError):
            get_space(server).export(store, policy="composite",
                                     config={"layers": []})

    def test_nested_composite_rejected(self, pair):
        system, server, client = pair
        store = KVStore()
        with pytest.raises(ConfigurationError):
            get_space(server).export(
                store, policy="composite",
                config={"layers": ["composite", "stub"]})

    def test_unknown_layer_rejected(self, pair):
        system, server, client = pair
        store = KVStore()
        with pytest.raises(ConfigurationError):
            get_space(server).export(store, policy="composite",
                                     config={"layers": ["martian"]})

    def test_tracing_over_caching(self, pair):
        system, server, client = pair
        store = KVStore()
        get_space(server).export(
            store, policy="composite",
            config={"layers": ["tracing", "caching"],
                    "layer_configs": {"tracing": {"report_every": 1000},
                                      "caching": {"invalidation": True}}})
        repro.register(server, "kv", store)
        proxy = repro.bind(client, "kv")
        proxy.put("k", 1)
        for _ in range(4):
            assert proxy.get("k") == 1
        assert proxy.proxy_layers == ["TracingProxy", "CachingProxy"]
        tracer = proxy._build_stack()[0]
        assert tracer.proxy_trace["get"]["count"] == 4
