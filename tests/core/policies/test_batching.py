"""Tests for the batching proxy: buffering, flushing, semantics."""

import pytest

import repro
from repro.apps.mailbox import Mailbox
from repro.core.export import get_space
from repro.metrics.counters import MessageWindow


def deploy(server, config=None):
    box = Mailbox()
    get_space(server).export(
        box, policy="batching",
        config=config if config is not None else {"batch_size": 4,
                                                  "batch_ops": ["post"]})
    repro.register(server, "mail", box)
    return box


class TestBuffering:
    def test_ops_buffer_until_batch_size(self, pair):
        system, server, client = pair
        box = deploy(server)
        proxy = repro.bind(client, "mail")
        with MessageWindow(system) as window:
            proxy.post("alice", "one")
            proxy.post("alice", "two")
            proxy.post("alice", "three")
        assert window.report.messages == 0
        assert proxy.proxy_pending == 3
        assert box.count() == 0

    def test_batch_size_triggers_flush(self, pair):
        system, server, client = pair
        box = deploy(server)
        proxy = repro.bind(client, "mail")
        for index in range(4):
            proxy.post("alice", f"m{index}")
        assert proxy.proxy_pending == 0
        assert box.count() == 4

    def test_order_preserved_across_batches(self, pair):
        system, server, client = pair
        box = deploy(server)
        proxy = repro.bind(client, "mail")
        for index in range(10):
            proxy.post("alice", f"m{index}")
        proxy.proxy_flush()
        bodies = [body for _, body in box._messages]
        assert bodies == [f"m{index}" for index in range(10)]

    def test_message_savings(self, pair):
        system, server, client = pair
        deploy(server, config={"batch_size": 10, "batch_ops": ["post"]})
        proxy = repro.bind(client, "mail")
        with MessageWindow(system) as window:
            for index in range(20):
                proxy.post("a", f"m{index}")
        assert window.report.messages == 4, "two batches = two round trips"


class TestReadYourWrites:
    def test_read_flushes_pending_writes(self, pair):
        system, server, client = pair
        deploy(server)
        proxy = repro.bind(client, "mail")
        proxy.post("alice", "hello")
        assert proxy.count() == 1, "the read must observe the buffered post"

    def test_non_batched_mutator_flushes_first(self, pair):
        system, server, client = pair
        deploy(server)
        proxy = repro.bind(client, "mail")
        proxy.post("alice", "hello")
        dropped = proxy.drain()
        assert dropped == 1, "drain must see the post that preceded it"

    def test_explicit_flush(self, pair):
        system, server, client = pair
        box = deploy(server)
        proxy = repro.bind(client, "mail")
        proxy.post("a", "x")
        assert proxy.proxy_flush() == 1
        assert proxy.proxy_flush() == 0
        assert box.count() == 1

    def test_discard_flushes(self, pair):
        system, server, client = pair
        box = deploy(server)
        proxy = repro.bind(client, "mail")
        proxy.post("a", "x")
        get_space(client).discard(proxy)
        assert box.count() == 1


class TestConfiguration:
    def test_batch_ops_limits_what_buffers(self, pair):
        system, server, client = pair
        box = deploy(server, config={"batch_size": 8, "batch_ops": []})
        proxy = repro.bind(client, "mail")
        with MessageWindow(system) as window:
            proxy.post("a", "x")
        assert window.report.messages == 2, "post not batchable -> direct RPC"
        assert box.count() == 1

    def test_batched_ops_return_none(self, pair):
        system, server, client = pair
        deploy(server)
        proxy = repro.bind(client, "mail")
        assert proxy.post("a", "x") is None

    def test_errors_surface_on_flush(self, pair):
        system, server, client = pair
        box = deploy(server)
        proxy = repro.bind(client, "mail")
        box._messages = None  # corrupt the service: appends will explode
        proxy.post("a", "x")
        with pytest.raises(Exception):
            proxy.proxy_flush()
