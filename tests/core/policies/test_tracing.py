"""Tests for the tracing policy and its collector."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.core.policies.tracing import TraceCollector


def deploy(server, report_every=4, collect=True):
    store = KVStore()
    get_space(server).export(store, policy="tracing",
                             config={"report_every": report_every,
                                     "collect": collect})
    repro.register(server, "kv", store)
    return store


class TestClientSideTrace:
    def test_per_verb_counts_and_latency(self, pair):
        system, server, client = pair
        deploy(server, report_every=1000)
        proxy = repro.bind(client, "kv")
        proxy.put("k", 1)
        proxy.get("k")
        proxy.get("k")
        assert proxy.proxy_trace["put"]["count"] == 1
        assert proxy.proxy_trace["get"]["count"] == 2
        assert proxy.proxy_trace["get"]["total"] > 0
        assert proxy.proxy_trace["get"]["max"] >= \
            proxy.proxy_trace["get"]["total"] / 2

    def test_failed_calls_are_recorded_too(self, pair):
        system, server, client = pair
        deploy(server, report_every=1000)
        proxy = repro.bind(client, "kv")
        server.node.crash()
        from repro.kernel.errors import RpcTimeout
        with pytest.raises(RpcTimeout):
            proxy.get("k")
        assert proxy.proxy_trace["get"]["count"] == 1
        assert proxy.proxy_trace["get"]["max"] > system.costs.rpc_timeout


class TestCollector:
    def test_reports_ship_on_schedule(self, pair):
        system, server, client = pair
        deploy(server, report_every=3)
        proxy = repro.bind(client, "kv")
        for index in range(7):
            proxy.put(f"k{index}", index)
        assert proxy.proxy_stats["reports"] == 2

    def test_aggregate_merges_clients(self, star):
        system, server, clients = star
        deploy(server, report_every=2)
        proxies = [repro.bind(ctx, "kv") for ctx in clients[:2]]
        for proxy in proxies:
            for index in range(4):
                proxy.get(f"k{index}")
        collector = proxies[0].proxy_config["collector"]
        aggregate = collector.aggregate()
        assert aggregate["get"]["count"] == 8
        assert len(collector.clients()) == 2

    def test_no_collector_mode_stays_silent(self, pair):
        system, server, client = pair
        deploy(server, report_every=1, collect=False)
        proxy = repro.bind(client, "kv")
        proxy.get("k")
        proxy.get("k")
        assert proxy.proxy_stats["reports"] == 0

    def test_collector_unit(self):
        collector = TraceCollector()
        collector.report("a/m", {"get": {"count": 2, "total": 1.0, "max": 0.7}})
        collector.report("b/m", {"get": {"count": 1, "total": 0.5, "max": 0.5}})
        aggregate = collector.aggregate()
        assert aggregate["get"]["count"] == 3
        assert aggregate["get"]["total"] == pytest.approx(1.5)
        assert aggregate["get"]["max"] == 0.7

    def test_re_report_replaces_previous(self):
        collector = TraceCollector()
        collector.report("a/m", {"get": {"count": 2, "total": 1.0, "max": 0.7}})
        collector.report("a/m", {"get": {"count": 5, "total": 2.0, "max": 0.9}})
        assert collector.aggregate()["get"]["count"] == 5
