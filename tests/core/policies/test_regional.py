"""Tests for the regional policy: geo-aware, breaker-admitted read order."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.core.policies.regional import RegionalProxy
from repro.core.policies.replicating import replicate
from repro.failures.injectors import begin_crash
from repro.kernel.errors import DistributionError
from repro.kernel.topology import build_regions
from repro.naming.bootstrap import install_name_service
from repro.resilience.breaker import ensure_breakers


@pytest.fixture
def regions(system):
    """Two regions × three nodes; returns (east, west) Region objects."""
    east, west = build_regions(system, ["east", "west"], nodes_per_region=3,
                               wan_factor=10.0)
    install_name_service(east.contexts[0])
    return east, west


def deploy(east, west, **kwargs):
    """A three-replica regional group (two east, one west) named 'kv'."""
    ref = replicate([east.contexts[0], east.contexts[1], west.contexts[0]],
                    KVStore, read_policy="regional", policy="regional",
                    extra_config={"regions": ["east", "east", "west"]},
                    **kwargs)
    repro.register(east.contexts[0], "kv", ref)
    return ref


class TestReadOrder:
    def test_clients_get_regional_proxies(self, system, regions):
        east, west = regions
        deploy(east, west, write_quorum=2)
        proxy = repro.bind(west.contexts[2], "kv")
        assert isinstance(proxy, RegionalProxy)

    def test_each_region_prefers_its_own_replicas(self, system, regions):
        east, west = regions
        deploy(east, west, write_quorum=2)
        east_proxy = repro.bind(east.contexts[2], "kv")
        west_proxy = repro.bind(west.contexts[2], "kv")
        east_proxy.put("k", 1)    # resolves the replica groups
        assert east_proxy._read_order_indices(3)[0] in (0, 1)
        assert west_proxy._read_order_indices(3)[0] == 2

    def test_local_read_beats_the_wan(self, system, regions):
        east, west = regions
        deploy(east, west, write_quorum=2)
        proxy = repro.bind(west.contexts[2], "kv")
        proxy.put("k", 1)
        before = west.contexts[2].now
        proxy.get("k")
        elapsed = west.contexts[2].now - before
        assert elapsed < system.costs.remote_latency * 10, \
            "a west read must be answered inside the west region"

    def test_explicit_read_policy_overrides_region_ranking(self, system,
                                                           regions):
        east, west = regions
        ref = replicate([east.contexts[0], east.contexts[1],
                         west.contexts[0]], KVStore, write_quorum=2,
                        read_policy="roundrobin", policy="regional",
                        extra_config={"regions": ["east", "east", "west"]})
        repro.register(east.contexts[0], "kv2", ref)
        proxy = repro.bind(west.contexts[2], "kv2")
        proxy.put("k", 1)
        first, second = (proxy._read_order_indices(3)[0],
                         proxy._read_order_indices(3)[0])
        assert (first, second) != (2, 2), \
            "roundrobin must rotate instead of pinning the near replica"


class TestBreakerAdmission:
    def test_open_breaker_demotes_the_near_replica(self, system, regions):
        east, west = regions
        deploy(east, west, write_quorum=2)
        ensure_breakers(system, failure_threshold=2)
        proxy = repro.bind(west.contexts[2], "kv")
        proxy.put("k", 1)
        assert proxy._read_order_indices(3)[0] == 2
        restore = begin_crash(system, "west-0")
        for _ in range(3):    # trip the breaker toward the dead replica
            try:
                proxy.get("k")
            except DistributionError:
                pass
        assert proxy._read_order_indices(3)[0] != 2, \
            "an open breaker must demote the near replica"
        restore()

    def test_reads_survive_the_local_region_outage(self, system, regions):
        east, west = regions
        deploy(east, west, write_quorum=2)
        ensure_breakers(system, failure_threshold=2)
        proxy = repro.bind(west.contexts[2], "kv")
        proxy.put("k", 41)
        restore = begin_crash(system, "west-0")
        values = set()
        for _ in range(4):
            try:
                values.add(proxy.get("k"))
            except DistributionError:
                pass
        assert 41 in values, "reads must retreat to the east majority"
        restore()

    def test_without_breakers_ranking_still_works(self, system, regions):
        east, west = regions
        deploy(east, west, write_quorum=2)
        assert system.breakers is None
        proxy = repro.bind(west.contexts[2], "kv")
        proxy.put("k", 1)
        assert proxy._read_order_indices(3)[0] == 2


class TestQuorumComposition:
    def test_regional_quorum_stays_fresh(self, system, regions):
        """W=2/R=2 over (east, east, west): write east-side while west is
        down, heal, and the very next west read is current — region
        preference never trades away the quorum overlap."""
        east, west = regions
        deploy(east, west, write_quorum=2, read_quorum=2,
               version_key="arg0")
        east_proxy = repro.bind(east.contexts[2], "kv")
        west_proxy = repro.bind(west.contexts[2], "kv")
        east_proxy.put("k", 1)
        restore = begin_crash(system, "west-0")
        east_proxy.put("k", 2)    # commits on the east majority
        restore()
        assert west_proxy.get("k") == 2
