"""Tests for the migrating proxy: thresholds, locality, shared access."""


import repro
from repro.apps.counter import Counter, StatsAccumulator
from repro.core.export import get_space
from repro.metrics.counters import MessageWindow


def deploy(server, migrate_after=3):
    counter = Counter()
    get_space(server).export(counter, policy="migrating",
                             config={"migrate_after": migrate_after})
    repro.register(server, "ctr", counter)
    return counter


class TestMigrationTrigger:
    def test_object_migrates_after_threshold(self, pair):
        system, server, client = pair
        deploy(server, migrate_after=3)
        proxy = repro.bind(client, "ctr")
        proxy.incr()
        proxy.incr()
        assert not proxy.proxy_is_local
        proxy.incr()  # threshold reached: migrates, then executes
        assert proxy.proxy_is_local
        assert proxy.proxy_stats["migrations"] == 1

    def test_state_survives_migration(self, pair):
        system, server, client = pair
        deploy(server, migrate_after=3)
        proxy = repro.bind(client, "ctr")
        for expected in range(1, 11):
            assert proxy.incr() == expected

    def test_post_migration_calls_are_message_free(self, pair):
        system, server, client = pair
        deploy(server, migrate_after=2)
        proxy = repro.bind(client, "ctr")
        for _ in range(5):
            proxy.incr()
        with MessageWindow(system) as window:
            proxy.incr()
        assert window.report.messages == 0

    def test_below_threshold_stays_remote(self, pair):
        system, server, client = pair
        deploy(server, migrate_after=100)
        proxy = repro.bind(client, "ctr")
        for _ in range(10):
            proxy.incr()
        assert not proxy.proxy_is_local

    def test_rich_state_migrates(self, pair):
        system, server, client = pair
        acc = StatsAccumulator()
        get_space(server).export(acc, policy="migrating",
                                 config={"migrate_after": 2})
        repro.register(server, "stats", acc)
        proxy = repro.bind(client, "stats")
        for value in (1.0, 5.0, 3.0, -2.0):
            proxy.observe(value)
        summary = proxy.summary()
        assert summary["count"] == 4
        assert summary["min"] == -2.0
        assert summary["max"] == 5.0
        assert proxy.proxy_is_local


class TestSharedAccess:
    def test_second_client_follows_the_object(self, star):
        system, server, clients = star
        deploy(server, migrate_after=2)
        first = repro.bind(clients[0], "ctr")
        for _ in range(4):
            first.incr()
        assert first.proxy_is_local
        second = repro.bind(clients[1], "ctr")
        assert second.incr() == 5
        assert second.proxy_ref.context_id == clients[0].context_id

    def test_object_can_migrate_again(self, star):
        system, server, clients = star
        deploy(server, migrate_after=2)
        first = repro.bind(clients[0], "ctr")
        for _ in range(3):
            first.incr()
        second = repro.bind(clients[1], "ctr")
        for _ in range(5):
            second.incr()
        assert second.proxy_is_local, "hot object should follow the new client"
        assert second.incr() == 9

    def test_principle_holds_throughout(self, star):
        system, server, clients = star
        deploy(server, migrate_after=2)
        proxies = [repro.bind(ctx, "ctr") for ctx in clients]
        for proxy in proxies:
            for _ in range(3):
                proxy.incr()
        repro.assert_principle(system)


class TestNonMigratable:
    def test_object_without_state_protocol_stays_put(self, pair):
        system, server, client = pair

        class Opaque:
            """No migrate_state: cannot move."""

            @repro.operation
            def touch(self):
                return "touched"

        ref = get_space(server).export(Opaque(), policy="migrating",
                                       config={"migrate_after": 1})
        proxy = get_space(client).bind_ref(ref)
        for _ in range(3):
            assert proxy.touch() == "touched"
        assert not proxy.proxy_is_local
        assert proxy.proxy_stats["migration_failures"] == 1
