"""Tests for restricted views (capability-style interface narrowing)."""

import pytest

from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.core.views import export_view, readonly_view, restrict
from repro.iface.interface import Interface, Operation
from repro.kernel.errors import DanglingReference, InterfaceError


class TestRestrict:
    def test_restrict_keeps_named_ops(self):
        view = restrict(KVStore.interface(), ["get", "contains"])
        assert view.names() == ["contains", "get"]

    def test_restrict_unknown_op_rejected(self):
        with pytest.raises(InterfaceError):
            restrict(KVStore.interface(), ["frobnicate"])

    def test_readonly_view_drops_mutators(self):
        view = readonly_view(KVStore.interface())
        assert "get" in view
        assert "put" not in view
        assert all(op.readonly for op in view.operations.values())

    def test_readonly_view_of_mutator_only_interface_rejected(self):
        iface = Interface("Mutators", [Operation("poke", ("x",))])
        with pytest.raises(InterfaceError):
            readonly_view(iface)

    def test_view_names_are_derived(self):
        assert readonly_view(KVStore.interface()).name == "KVStoreReader"
        assert restrict(KVStore.interface(), ["get"]).name == "KVStoreView"


class TestExportView:
    @pytest.fixture
    def viewed(self, pair):
        system, server, client = pair
        store = KVStore()
        store.put("k", "visible")
        view_ref = export_view(get_space(server), store,
                               readonly_view(KVStore.interface()))
        proxy = get_space(client).bind_ref(view_ref, handshake=False)
        return system, server, client, store, view_ref, proxy

    def test_view_allows_declared_ops(self, viewed):
        system, server, client, store, view_ref, proxy = viewed
        assert proxy.get("k") == "visible"
        assert proxy.contains("k") is True

    def test_view_blocks_undeclared_ops_client_side(self, viewed):
        system, server, client, store, view_ref, proxy = viewed
        with pytest.raises(InterfaceError):
            proxy.put("k", "overwritten")
        assert store.get("k") == "visible"

    def test_view_blocks_forged_calls_server_side(self, viewed):
        """Even a hand-built call on the view's oid is rejected."""
        system, server, client, store, view_ref, proxy = viewed
        with pytest.raises(InterfaceError):
            system.rpc.call(client, view_ref, "put", ("k", "hacked"))
        assert store.get("k") == "visible"

    def test_view_and_full_export_coexist(self, pair):
        system, server, client = pair
        store = KVStore()
        space = get_space(server)
        full_ref = space.export(store)
        view_ref = export_view(space, store,
                               readonly_view(KVStore.interface()))
        full = get_space(client).bind_ref(full_ref)
        view = get_space(client).bind_ref(view_ref, handshake=False)
        full.put("k", 1)
        assert view.get("k") == 1

    def test_revoking_view_keeps_full_access(self, pair):
        system, server, client = pair
        store = KVStore()
        space = get_space(server)
        full_ref = space.export(store)
        view_ref = export_view(space, store,
                               readonly_view(KVStore.interface()))
        space.unexport(view_ref)
        view = get_space(client).bind_ref(view_ref, handshake=False)
        with pytest.raises(DanglingReference):
            view.get("k")
        full = get_space(client).bind_ref(full_ref)
        assert full.put("k", 1) is True

    def test_view_with_caching_policy(self, pair):
        system, server, client = pair
        store = KVStore()
        store.put("k", 9)
        view_ref = export_view(get_space(server), store,
                               readonly_view(KVStore.interface()),
                               policy="caching",
                               config={"invalidation": False, "ttl": None})
        proxy = get_space(client).bind_ref(view_ref, handshake=False)
        assert proxy.get("k") == 9
        before = client.now
        assert proxy.get("k") == 9
        assert client.now - before < system.costs.remote_latency
