"""Unit tests for binding: proxy tables, handshakes, upgrades, GC."""

import pytest

from repro.apps.kv import CachedKVStore, KVStore
from repro.core.export import get_space
from repro.core.policies.caching import CachingProxy
from repro.kernel.errors import BindError
from repro.metrics.counters import MessageWindow


class TestBindRef:
    def test_bind_instantiates_exporter_chosen_policy(self, pair):
        system, server, client = pair
        ref = get_space(server).export(CachedKVStore())
        proxy = get_space(client).bind_ref(ref)
        assert isinstance(proxy, CachingProxy)

    def test_bind_home_returns_object(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        assert get_space(server).bind_ref(ref) is store

    def test_one_proxy_per_object_per_context(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        space = get_space(client)
        assert space.bind_ref(ref) is space.bind_ref(ref)

    def test_different_contexts_get_different_proxies(self, star):
        system, server, clients = star
        ref = get_space(server).export(KVStore())
        a = get_space(clients[0]).bind_ref(ref)
        b = get_space(clients[1]).bind_ref(ref)
        assert a is not b
        assert a.proxy_context is clients[0]
        assert b.proxy_context is clients[1]

    def test_handshake_fetches_exporter_config(self, pair):
        system, server, client = pair
        ref = get_space(server).export(
            KVStore(), policy="caching",
            config={"ttl": 0.123, "invalidation": False})
        proxy = get_space(client).bind_ref(ref, handshake=True)
        assert proxy.proxy_config["ttl"] == 0.123

    def test_no_handshake_skips_config_rpc(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        with MessageWindow(system) as window:
            get_space(client).bind_ref(ref, handshake=False)
        assert window.report.messages == 0

    def test_handshake_costs_one_round_trip(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        with MessageWindow(system) as window:
            get_space(client).bind_ref(ref, handshake=True)
        assert window.report.messages == 2

    def test_unknown_interface_fails_bind(self, pair):
        system, server, client = pair
        from repro.wire.refs import ObjectRef
        bogus = ObjectRef("server/main", "server/main:99", "Unregistered")
        with pytest.raises(BindError):
            get_space(client).bind_ref(bogus, handshake=False)

    def test_unknown_policy_fails_bind(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        from dataclasses import replace
        odd = replace(ref, policy="martian")
        with pytest.raises(BindError):
            get_space(client).bind_ref(odd, handshake=False)


class TestUpgrade:
    def test_upgrade_completes_late_handshake(self, pair):
        system, server, client = pair
        ref = get_space(server).export(
            KVStore(), policy="caching", config={"ttl": 0.5,
                                                 "invalidation": False})
        space = get_space(client)
        proxy = space.bind_ref(ref, handshake=False)
        assert "ttl" not in proxy.proxy_config
        space.upgrade(proxy)
        assert proxy.proxy_config["ttl"] == 0.5

    def test_upgrade_is_idempotent(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        space = get_space(client)
        proxy = space.bind_ref(ref, handshake=True)
        with MessageWindow(system) as window:
            space.upgrade(proxy)
        assert window.report.messages == 0

    def test_local_config_wins_over_shipped(self, pair):
        system, server, client = pair
        ref = get_space(server).export(
            KVStore(), policy="caching", config={"ttl": 0.5,
                                                 "invalidation": False})
        space = get_space(client)
        proxy = space.bind_ref(ref, handshake=False, config={"ttl": 0.125})
        space.upgrade(proxy)
        assert proxy.proxy_config["ttl"] == 0.125


class TestDiscardAndSweep:
    def test_discard_removes_from_table(self, pair):
        system, server, client = pair
        ref = get_space(server).export(KVStore())
        space = get_space(client)
        proxy = space.bind_ref(ref)
        space.discard(proxy)
        assert ref.key not in client.proxies

    def test_sweep_drops_idle_proxies(self, pair):
        system, server, client = pair
        space = get_space(client)
        refs = [get_space(server).export(KVStore()) for _ in range(5)]
        proxies = [space.bind_ref(ref, handshake=False) for ref in refs]
        client.clock.advance(100.0)
        proxies[0].get("x")  # keep one hot
        dropped = space.sweep(unused_for=50.0)
        assert dropped >= 4
        assert refs[0].key in client.proxies

    def test_sweep_keeps_recent(self, pair):
        system, server, client = pair
        space = get_space(client)
        ref = get_space(server).export(KVStore())
        space.bind_ref(ref)
        assert space.sweep(unused_for=1000.0) == 0

    def test_rebinding_after_sweep_works(self, pair):
        system, server, client = pair
        space = get_space(client)
        ref = get_space(server).export(KVStore())
        proxy = space.bind_ref(ref)
        client.clock.advance(100.0)
        space.sweep(unused_for=1.0)
        fresh = space.bind_ref(ref)
        assert fresh is not proxy
        assert fresh.get("anything") is None


class TestContextManagerService:
    def test_ping(self, pair):
        system, server, client = pair
        get_space(server)
        mgr = get_space(client).ctxmgr_proxy(server.context_id)
        assert mgr.ping() == "pong"

    def test_describe_unknown_oid_raises(self, pair):
        system, server, client = pair
        get_space(server)
        mgr = get_space(client).ctxmgr_proxy(server.context_id)
        with pytest.raises(KeyError):
            mgr.describe("server/main:404")

    def test_list_exports(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        mgr = get_space(client).ctxmgr_proxy(server.context_id)
        assert ref.oid in mgr.list_exports()
