"""Tests for strict two-phase commit: wedged keys, decisions, recovery.

The participant-side protocol (prepare locks, idempotent decisions) is
exercised directly on :class:`VersionedKVStore`; the coordinator's
decision log and redelivery are exercised through proxies with an
unreachable-participant stand-in.
"""

import pytest

import repro
from repro.kernel.errors import DistributionError, TransactionBlocked
from repro.transactions import TransactionCoordinator, VersionedKVStore


class TestPrepareLocks:
    def test_prepare_stages_and_locks(self):
        store = VersionedKVStore()
        store.write("a", 5)
        assert store.prepare(1, [["a", 1]], [["a", 4]]) is True
        assert store.locked_keys() == ["a"]
        assert store.snapshot()["a"] == 5, "staged writes are not applied"

    def test_wedged_key_refuses_reads_and_writes(self):
        store = VersionedKVStore()
        store.prepare(1, [], [["a", 1]])
        with pytest.raises(TransactionBlocked):
            store.read("a")
        with pytest.raises(TransactionBlocked):
            store.write("a", 2)
        with pytest.raises(TransactionBlocked):
            store.versions(["a"])
        with pytest.raises(TransactionBlocked):
            store.apply([["a", 3]])

    def test_transaction_blocked_is_a_distribution_error(self):
        assert issubclass(TransactionBlocked, DistributionError)

    def test_unwedged_keys_stay_answerable(self):
        store = VersionedKVStore()
        store.write("b", 1)
        store.prepare(1, [], [["a", 1]])
        assert store.read("b") == [1, 1]

    def test_foreign_lock_refuses_prepare(self):
        store = VersionedKVStore()
        assert store.prepare(1, [], [["a", 1]])
        assert store.prepare(2, [], [["a", 9]]) is False

    def test_version_conflict_refuses_prepare(self):
        store = VersionedKVStore()
        store.write("a", 5)    # version 1
        assert store.prepare(1, [["a", 0]], [["a", 9]]) is False
        assert store.locked_keys() == []

    def test_duplicate_prepare_replays_the_answer(self):
        store = VersionedKVStore()
        assert store.prepare(1, [], [["a", 1]]) is True
        assert store.prepare(1, [], [["a", 1]]) is True


class TestDecisions:
    def test_commit_prepared_applies_and_releases(self):
        store = VersionedKVStore()
        store.write("a", 5)
        store.prepare(1, [["a", 1]], [["a", 4]])
        assert store.commit_prepared(1) is True
        assert store.read("a") == [4, 2]
        assert store.locked_keys() == []

    def test_abort_prepared_drops_and_releases(self):
        store = VersionedKVStore()
        store.write("a", 5)
        store.prepare(1, [["a", 1]], [["a", 4]])
        assert store.abort_prepared(1) is True
        assert store.read("a") == [5, 1]
        assert store.locked_keys() == []

    def test_decisions_are_idempotent(self):
        store = VersionedKVStore()
        store.prepare(1, [], [["a", 4]])
        assert store.commit_prepared(1) is True
        version = store.read("a")[1]
        assert store.commit_prepared(1) is True, "redelivery is a no-op"
        assert store.read("a")[1] == version

    def test_presumed_abort_for_unknown_txid(self):
        store = VersionedKVStore()
        assert store.abort_prepared(404) is True
        assert store.commit_prepared(405) is False, \
            "commit of an unprepared, undecided txid cannot succeed"


class TestCoordinator2PC:
    @pytest.fixture
    def deployed(self, star):
        system, server, clients = star
        east, west = VersionedKVStore(), VersionedKVStore()
        repro.register(clients[1], "east", east)
        repro.register(clients[2], "west", west)
        coordinator = TransactionCoordinator()
        proxies = (repro.bind(clients[0], "east"),
                   repro.bind(clients[0], "west"))
        return system, coordinator, (east, west), proxies

    def test_commit_2pc_spans_stores(self, deployed):
        system, coordinator, (east, west), (p_east, p_west) = deployed
        txid = coordinator.begin()
        assert coordinator.commit_2pc(
            txid, [], [[p_east, "a", 1], [p_west, "b", 2]]) is True
        assert east.snapshot() == {"a": 1}
        assert west.snapshot() == {"b": 2}
        assert east.locked_keys() == [] and west.locked_keys() == []
        assert coordinator.in_doubt() == 0

    def test_refused_prepare_aborts_everywhere(self, deployed):
        system, coordinator, (east, west), (p_east, p_west) = deployed
        west.prepare(99, [], [["b", 0]])    # a rival wedge on the west key
        txid = coordinator.begin()
        assert coordinator.commit_2pc(
            txid, [], [[p_east, "a", 1], [p_west, "b", 2]]) is False
        assert east.snapshot() == {}, "the prepared east write must abort"
        assert east.locked_keys() == []
        assert coordinator.stats["aborted"] == 1

    def test_unreachable_decision_parks_and_recovers(self, star):
        """A participant that dies between prepare and decision wedges its
        keys; recover() redelivers once it answers again."""
        system, server, clients = star
        east = VersionedKVStore()
        repro.register(clients[1], "east", east)
        coordinator = TransactionCoordinator()
        p_east = repro.bind(clients[0], "east")

        class Unreachable:
            """Proxy stand-in: prepare succeeds, the decision cannot land."""

            def __init__(self):
                self.store = VersionedKVStore()
                self.down = False

            def prepare(self, txid, reads, writes):
                return self.store.prepare(txid, reads, writes)

            def commit_prepared(self, txid):
                if self.down:
                    raise DistributionError("partitioned away")
                return self.store.commit_prepared(txid)

            def abort_prepared(self, txid):
                if self.down:
                    raise DistributionError("partitioned away")
                return self.store.abort_prepared(txid)

        flaky = Unreachable()
        flaky.down = True
        txid = coordinator.begin()
        assert coordinator.commit_2pc(
            txid, [], [[p_east, "a", 1], [flaky, "b", 2]]) is True
        assert east.snapshot() == {"a": 1}, "reachable side committed"
        assert coordinator.in_doubt() == 1
        assert flaky.store.locked_keys() == ["b"], "wedged until recovery"
        assert coordinator.recover() == 0, "still unreachable"
        flaky.down = False
        assert coordinator.recover() == 1
        assert coordinator.in_doubt() == 0
        assert flaky.store.snapshot() == {"b": 2}
        assert flaky.store.locked_keys() == []
