"""Tests for the transactions substrate: OCC over proxies."""

import pytest

import repro
from repro.kernel.errors import ProtocolError
from repro.transactions import (
    Transaction,
    TransactionCoordinator,
    VersionedKVStore,
    run_transaction,
)


@pytest.fixture
def bank(star):
    """Coordinator + one store, two clients; accounts seeded."""
    system, server, clients = star
    repro.register(server, "txn", TransactionCoordinator())
    store = VersionedKVStore()
    repro.register(server, "bank", store)
    seed_coord = repro.bind(clients[0], "txn")
    seed_bank = repro.bind(clients[0], "bank")
    txn = Transaction(seed_coord)
    txn.write(seed_bank, "alice", 100)
    txn.write(seed_bank, "bob", 50)
    assert txn.commit()
    handles = []
    for ctx in clients[:2]:
        handles.append((repro.bind(ctx, "txn"), repro.bind(ctx, "bank")))
    return system, store, handles


class TestVersionedStore:
    def test_versions_start_at_zero(self):
        store = VersionedKVStore()
        assert store.read("x") == [None, 0]
        assert store.versions(["x", "y"]) == [0, 0]

    def test_writes_bump_versions(self):
        store = VersionedKVStore()
        assert store.write("x", "a") == 1
        assert store.write("x", "b") == 2
        assert store.read("x") == ["b", 2]

    def test_apply_batch(self):
        store = VersionedKVStore()
        assert store.apply([["x", 1], ["y", 2]]) == [1, 1]
        assert store.snapshot() == {"x": 1, "y": 2}

    def test_migration_capsule_roundtrip(self):
        store = VersionedKVStore()
        store.write("x", "v")
        clone = VersionedKVStore.from_migration_state(store.migrate_state())
        assert clone.read("x") == ["v", 1]


class TestCommitAbort:
    def test_simple_commit(self, bank):
        system, store, handles = bank
        coord, bank_proxy = handles[0]
        txn = Transaction(coord)
        balance = txn.read(bank_proxy, "alice")
        txn.write(bank_proxy, "alice", balance + 1)
        assert txn.commit() is True
        assert store.snapshot()["alice"] == 101

    def test_conflicting_writer_aborts(self, bank):
        system, store, handles = bank
        (coord_a, bank_a), (coord_b, bank_b) = handles
        txn_a = Transaction(coord_a)
        txn_b = Transaction(coord_b)
        a = txn_a.read(bank_a, "alice")
        b = txn_b.read(bank_b, "alice")
        txn_a.write(bank_a, "alice", a - 10)
        txn_b.write(bank_b, "alice", b - 20)
        assert txn_a.commit() is True
        assert txn_b.commit() is False
        assert store.snapshot()["alice"] == 90, "no lost update"

    def test_disjoint_transactions_both_commit(self, bank):
        system, store, handles = bank
        (coord_a, bank_a), (coord_b, bank_b) = handles
        txn_a = Transaction(coord_a)
        txn_b = Transaction(coord_b)
        txn_a.write(bank_a, "alice", txn_a.read(bank_a, "alice") - 1)
        txn_b.write(bank_b, "bob", txn_b.read(bank_b, "bob") - 1)
        assert txn_a.commit()
        assert txn_b.commit()

    def test_atomicity_across_keys(self, bank):
        """A doomed transaction applies none of its writes."""
        system, store, handles = bank
        (coord_a, bank_a), (coord_b, bank_b) = handles
        txn_b = Transaction(coord_b)
        alice = txn_b.read(bank_b, "alice")
        bob = txn_b.read(bank_b, "bob")
        # An interloper invalidates one of the two reads.
        txn_a = Transaction(coord_a)
        txn_a.write(bank_a, "alice", 0)
        assert txn_a.commit()
        txn_b.write(bank_b, "alice", alice - 5)
        txn_b.write(bank_b, "bob", bob + 5)
        assert txn_b.commit() is False
        snapshot = store.snapshot()
        assert snapshot["alice"] == 0 and snapshot["bob"] == 50

    def test_read_your_own_writes(self, bank):
        system, store, handles = bank
        coord, bank_proxy = handles[0]
        txn = Transaction(coord)
        txn.write(bank_proxy, "alice", 7)
        assert txn.read(bank_proxy, "alice") == 7
        assert txn.commit()

    def test_write_only_transactions_always_commit(self, bank):
        system, store, handles = bank
        (coord_a, bank_a), (coord_b, bank_b) = handles
        txn_a = Transaction(coord_a)
        txn_b = Transaction(coord_b)
        txn_a.write(bank_a, "alice", 1)
        txn_b.write(bank_b, "alice", 2)
        assert txn_a.commit() and txn_b.commit()

    def test_empty_transaction_commits(self, bank):
        system, store, handles = bank
        coord, _ = handles[0]
        assert Transaction(coord).commit() is True

    def test_finished_transaction_refuses_reuse(self, bank):
        system, store, handles = bank
        coord, bank_proxy = handles[0]
        txn = Transaction(coord)
        txn.commit()
        with pytest.raises(ProtocolError):
            txn.read(bank_proxy, "alice")
        with pytest.raises(ProtocolError):
            txn.commit()

    def test_abort_applies_nothing(self, bank):
        system, store, handles = bank
        coord, bank_proxy = handles[0]
        txn = Transaction(coord)
        txn.write(bank_proxy, "alice", -999)
        txn.abort()
        assert store.snapshot()["alice"] == 100


class TestRunTransaction:
    def test_retry_until_commit(self, bank):
        system, store, handles = bank
        (coord_a, bank_a), (coord_b, bank_b) = handles

        def transfer(txn):
            a = txn.read(bank_b, "alice")
            b = txn.read(bank_b, "bob")
            txn.write(bank_b, "alice", a - 5)
            txn.write(bank_b, "bob", b + 5)

        __, attempts = run_transaction(coord_b, transfer)
        assert attempts == 1
        snapshot = store.snapshot()
        assert snapshot["alice"] + snapshot["bob"] == 150

    def test_interleaved_increments_never_lose_updates(self, bank):
        """Two clients interleave 10 increments each; total is exact."""
        system, store, handles = bank

        def make_increment(bank_proxy):
            def increment(txn):
                txn.write(bank_proxy, "counter",
                          (txn.read(bank_proxy, "counter") or 0) + 1)
            return increment

        total_attempts = 0
        for round_no in range(10):
            for coord, bank_proxy in handles:
                __, attempts = run_transaction(coord,
                                               make_increment(bank_proxy))
                total_attempts += attempts
        assert store.snapshot()["counter"] == 20
        assert total_attempts >= 20

    def test_budget_exhaustion_raises(self, bank):
        system, store, handles = bank
        coord, bank_proxy = handles[0]

        def doomed(txn):
            txn.read(bank_proxy, "alice")
            # Sabotage: another committed writer on every attempt.
            saboteur = Transaction(coord)
            saboteur.write(bank_proxy, "alice", 0)
            saboteur.commit()
            txn.write(bank_proxy, "alice", 1)

        with pytest.raises(ProtocolError):
            run_transaction(coord, doomed, max_attempts=3)


class TestMultiStore:
    def test_transaction_spans_stores(self, star):
        system, server, clients = star
        repro.register(server, "txn", TransactionCoordinator())
        east_store = VersionedKVStore()
        west_store = VersionedKVStore()
        repro.register(clients[1], "east", east_store)
        repro.register(clients[2], "west", west_store)
        coord = repro.bind(clients[0], "txn")
        east = repro.bind(clients[0], "east")
        west = repro.bind(clients[0], "west")
        txn = Transaction(coord)
        txn.write(east, "k", "east-value")
        txn.write(west, "k", "west-value")
        assert txn.commit()
        assert east_store.snapshot() == {"k": "east-value"}
        assert west_store.snapshot() == {"k": "west-value"}
        repro.assert_principle(system)

    def test_cross_store_conflict_detected(self, star):
        system, server, clients = star
        repro.register(server, "txn", TransactionCoordinator())
        repro.register(clients[1], "east", VersionedKVStore())
        coord_a = repro.bind(clients[0], "txn")
        coord_b = repro.bind(clients[2], "txn")
        east_a = repro.bind(clients[0], "east")
        east_b = repro.bind(clients[2], "east")
        txn_b = Transaction(coord_b)
        txn_b.read(east_b, "k")
        txn_a = Transaction(coord_a)
        txn_a.write(east_a, "k", "sniped")
        assert txn_a.commit()
        txn_b.write(east_b, "k", "stale-based")
        assert txn_b.commit() is False
