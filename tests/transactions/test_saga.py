"""Tests for the saga coordinator: completion, compensation, idempotency."""

import pytest

import repro
from repro.kernel.errors import DistributionError
from repro.transactions import SagaCoordinator, VersionedKVStore


@pytest.fixture
def stores(star):
    """Two stores on different nodes; returns (saga, raw stores, proxies)."""
    system, server, clients = star
    east, west = VersionedKVStore(), VersionedKVStore()
    repro.register(clients[1], "east", east)
    repro.register(clients[2], "west", west)
    saga = SagaCoordinator()
    return saga, (east, west), (repro.bind(clients[0], "east"),
                                repro.bind(clients[0], "west"))


class TestForwardPath:
    def test_all_steps_apply(self, stores):
        saga, (east, west), (p_east, p_west) = stores
        assert saga.run([[p_east, "a", 5, None, None],
                         [p_west, "b", 3, None, None]]) == ["committed"]
        assert east.snapshot() == {"a": 5}
        assert west.snapshot() == {"b": 3}
        assert saga.ledger == {}, "committed sagas leave no ledger entry"
        assert saga.stats["committed"] == 1

    def test_refusal_compensates_the_prefix(self, stores):
        saga, (east, west), (p_east, p_west) = stores
        east.write("a", 10)
        outcome = saga.run([[p_east, "a", -4, 0, None],
                            [p_west, "b", 4, None, 2]])    # cap refuses
        assert outcome == ["refused", 1]
        assert east.snapshot()["a"] == 10, "the debit must be undone"
        assert west.snapshot().get("b") in (None, 0)
        assert saga.stats["compensated"] == 1

    def test_first_step_refusal_needs_no_compensation(self, stores):
        saga, (east, west), (p_east, p_west) = stores
        outcome = saga.run([[p_east, "a", -4, 0, None],
                            [p_west, "b", 4, None, None]])
        assert outcome == ["refused", 0]
        assert east.snapshot() == {} and west.snapshot() == {}
        assert saga.ledger == {}


class TestIdempotency:
    def test_adjust_once_replays_recorded_outcome(self):
        store = VersionedKVStore()
        assert store.adjust_once("i1", "k", 5) == ["applied", 5]
        assert store.adjust_once("i1", "k", 5) == ["applied", 5]
        assert store.snapshot()["k"] == 5, "retries must not double-apply"

    def test_refusal_outcomes_replay_too(self):
        store = VersionedKVStore()
        assert store.adjust_once("i1", "k", -1, 0, None) == ["refused", 0]
        store.write("k", 10)
        assert store.adjust_once("i1", "k", -1, 0, None) == ["refused", 0]

    def test_cancel_tombstone_forecloses_a_late_forward_step(self):
        store = VersionedKVStore()
        assert store.cancel_once("i1") == ["cancelled"]
        assert store.adjust_once("i1", "k", 5) == ["cancelled"]
        assert store.snapshot() == {}, "the tombstone must win"

    def test_cancel_after_apply_reveals_the_outcome(self):
        store = VersionedKVStore()
        store.adjust_once("i1", "k", 5)
        assert store.cancel_once("i1") == ["applied", 5]


class TestInDoubtSteps:
    class FlakyStore:
        """Proxy stand-in whose calls fail while ``down`` is set."""

        def __init__(self):
            self.store = VersionedKVStore()
            self.down = False

        def adjust_once(self, idem, key, delta, floor=None, cap=None):
            if self.down:
                raise DistributionError("unreachable")
            return self.store.adjust_once(idem, key, delta, floor, cap)

        def cancel_once(self, idem):
            if self.down:
                raise DistributionError("unreachable")
            return self.store.cancel_once(idem)

    def test_in_doubt_step_aborts_and_compensates(self, stores):
        saga, (east, west), (p_east, p_west) = stores
        east.write("a", 10)
        flaky = self.FlakyStore()
        flaky.down = True
        outcome = saga.run([[p_east, "a", -4, 0, None],
                            [flaky, "b", 4, None, None]])
        assert outcome == ["aborted", 1]
        assert east.snapshot()["a"] == 10, "the applied debit was undone"
        assert saga.unresolved() == 1, "the tombstone is parked"
        assert saga.stats["parked_actions"] >= 1

    def test_settle_drains_parked_tombstones(self, stores):
        saga, (east, west), (p_east, p_west) = stores
        east.write("a", 10)
        flaky = self.FlakyStore()
        flaky.down = True
        saga.run([[p_east, "a", -4, 0, None], [flaky, "b", 4, None, None]])
        assert saga.settle() == 0, "still unreachable: nothing resolves"
        flaky.down = False
        assert saga.settle() >= 1
        assert saga.unresolved() == 0
        assert saga.ledger == {}
        assert flaky.store.adjust_once("s1/1", "b", 4) == ["cancelled"], \
            "the delivered tombstone forecloses the late forward step"

    def test_in_doubt_step_that_applied_is_compensated_via_tombstone(self):
        """The lost-reply case: the forward step DID apply, the reply died.

        cancel_once reveals ["applied", ...] and the saga must undo it."""
        saga = SagaCoordinator()
        first = VersionedKVStore()
        first.write("a", 10)

        class LostReply:
            """Forward-step replies are lost; everything else works."""

            def __init__(self):
                self.store = VersionedKVStore()
                self.store.write("b", 1)

            def adjust_once(self, idem, key, delta, floor=None, cap=None):
                outcome = self.store.adjust_once(idem, key, delta, floor,
                                                 cap)
                if not idem.endswith("/c"):
                    raise DistributionError("reply lost after apply")
                return outcome

            def cancel_once(self, idem):
                return self.store.cancel_once(idem)

        lost = LostReply()
        outcome = saga.run([[first, "a", -4, 0, None],
                            [lost, "b", 4, None, None]])
        assert outcome == ["aborted", 1]
        assert lost.store.snapshot()["b"] == 1, \
            "the applied-but-unacknowledged credit must be compensated"
        assert first.snapshot()["a"] == 10
        assert saga.ledger == {}

    def test_parked_compensation_counts_as_unresolved(self):
        """The fault heals between the refusal and the settle sweep."""
        saga = SagaCoordinator()
        second = VersionedKVStore()
        second.write("b", 20)    # cap 12 already exceeded: step 1 refuses

        class CompLost:
            """Forward steps work; compensations fail until healed."""

            def __init__(self):
                self.store = VersionedKVStore()
                self.healed = False

            def adjust_once(self, idem, key, delta, floor=None, cap=None):
                if idem.endswith("/c") and not self.healed:
                    raise DistributionError("unreachable")
                return self.store.adjust_once(idem, key, delta, floor, cap)

            def cancel_once(self, idem):
                return self.store.cancel_once(idem)

        flaky = CompLost()
        outcome = saga.run([[flaky, "a", 4, None, None],
                            [second, "b", 4, None, 12]])
        assert outcome == ["refused", 1]
        assert flaky.store.snapshot()["a"] == 4, "applied, not yet undone"
        assert saga.unresolved() == 1, "the compensation is parked"
        flaky.healed = True
        assert saga.settle() == 1
        assert flaky.store.snapshot()["a"] == 0, "undone after the heal"
        assert saga.unresolved() == 0 and saga.ledger == {}
