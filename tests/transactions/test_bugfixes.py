"""Regression tests for three optimistic-transaction bugs.

Each test here failed against the buggy implementation and pins the fix:

1. ``Transaction.read`` tested the buffered value with ``is not None``, so
   a buffered write of ``None`` was invisible to the transaction's own
   reads (and grew the read set with a spurious validation entry).
2. ``run_transaction`` let a raising body propagate without aborting the
   open transaction, leaking a half-built read/write set.
3. ``TransactionCoordinator.commit`` batched participants by ``id(store)``;
   two proxy objects for the *same* remote store split into separate
   batches, defeating the documented last-write-wins dedup and applying
   one transactional write twice.
"""

import pytest

import repro
from repro.transactions import (
    Transaction,
    TransactionCoordinator,
    VersionedKVStore,
    run_transaction,
    store_key,
)


@pytest.fixture
def deployed(star):
    """Store + coordinator on the server; returns (store, clients)."""
    system, server, clients = star
    store = VersionedKVStore()
    repro.register(server, "store", store)
    repro.register(server, "txn", TransactionCoordinator())
    return store, clients


class TestBufferedNoneRead:
    def test_buffered_none_shadows_the_store(self, deployed):
        store, clients = deployed
        coord = repro.bind(clients[0], "txn")
        proxy = repro.bind(clients[0], "store")
        proxy.write("k", 5)
        txn = Transaction(coord)
        txn.write(proxy, "k", None)
        assert txn.read(proxy, "k") is None, \
            "a buffered write of None must shadow the committed value"

    def test_buffered_none_read_adds_no_read_set_entry(self, deployed):
        store, clients = deployed
        coord = repro.bind(clients[0], "txn")
        proxy = repro.bind(clients[0], "store")
        txn = Transaction(coord)
        txn.write(proxy, "k", None)
        txn.read(proxy, "k")
        assert txn.read_set_size == 0, \
            "reading your own buffered write must not validate the store"
        assert txn.commit()
        assert store.snapshot() == {"k": None}


class TestBodyExceptionAborts:
    def test_raising_body_aborts_the_transaction(self, deployed):
        store, clients = deployed
        coord = repro.bind(clients[0], "txn")
        proxy = repro.bind(clients[0], "store")
        seen = []

        def body(txn):
            seen.append(txn)
            txn.write(proxy, "k", 1)
            raise ValueError("business rule says no")

        with pytest.raises(ValueError):
            run_transaction(coord, body)
        assert seen[0].finished, "the open transaction must be aborted"
        assert seen[0].write_set_size == 0
        assert store.snapshot() == {}, "nothing may reach the store"

    def test_body_that_aborted_itself_is_not_aborted_twice(self, deployed):
        store, clients = deployed
        coord = repro.bind(clients[0], "txn")
        proxy = repro.bind(clients[0], "store")

        def body(txn):
            txn.write(proxy, "k", 1)
            txn.abort()
            raise ValueError("after explicit abort")

        with pytest.raises(ValueError):
            run_transaction(coord, body)

    def test_explicit_abort_without_raise_is_honored(self, deployed):
        store, clients = deployed
        coord = repro.bind(clients[0], "txn")
        proxy = repro.bind(clients[0], "store")

        def body(txn):
            txn.write(proxy, "k", 1)
            txn.abort()
            return "declined"

        result, attempts = run_transaction(coord, body)
        assert (result, attempts) == ("declined", 1)
        assert store.snapshot() == {}


class TestDuplicateReferenceBatching:
    def test_two_proxies_one_store_share_a_key(self, deployed):
        store, clients = deployed
        proxy_a = repro.bind(clients[0], "store")
        proxy_b = repro.bind(clients[1], "store")
        assert proxy_a is not proxy_b
        assert store_key(proxy_a) == store_key(proxy_b)

    def test_duplicate_references_dedup_at_commit(self, deployed):
        """One commit, one store reached through two proxy objects: the
        writes must land in one batch with last-write-wins dedup."""
        store, clients = deployed
        proxy_a = repro.bind(clients[0], "store")
        proxy_b = repro.bind(clients[1], "store")
        coordinator = TransactionCoordinator()
        txid = coordinator.begin()
        assert coordinator.commit(
            txid, [], [[proxy_a, "x", 1], [proxy_b, "x", 2]])
        assert store.read("x") == [2, 1], \
            "one write applied once: the duplicate reference must dedup"
        assert coordinator.stats["applied_writes"] == 1

    def test_duplicate_read_references_validate_once(self, deployed):
        store, clients = deployed
        proxy_a = repro.bind(clients[0], "store")
        proxy_b = repro.bind(clients[1], "store")
        store.write("x", 10)
        coordinator = TransactionCoordinator()
        txid = coordinator.begin()
        assert coordinator.commit(
            txid, [[proxy_a, "x", 1], [proxy_b, "x", 1]], [])
        assert coordinator.stats["validated_reads"] == 2

    def test_buffered_write_visible_through_other_proxy(self, deployed):
        store, clients = deployed
        coord = repro.bind(clients[0], "txn")
        proxy_a = repro.bind(clients[0], "store")
        proxy_b = repro.bind(clients[1], "store")
        txn = Transaction(coord)
        txn.write(proxy_a, "k", 7)
        assert txn.read(proxy_b, "k") == 7, \
            "read-your-writes must hold across proxy objects for one store"


class TestReadOnlyValidation:
    def test_read_only_transaction_validates(self, deployed):
        """A read-only transaction still aborts when its snapshot moved."""
        store, clients = deployed
        coord = repro.bind(clients[0], "txn")
        proxy = repro.bind(clients[0], "store")
        proxy.write("k", 1)
        txn = Transaction(coord)
        assert txn.read(proxy, "k") == 1
        proxy.write("k", 2)    # interloper invalidates the snapshot
        assert txn.commit() is False

    def test_empty_transaction_skips_the_coordinator(self, deployed):
        store, clients = deployed
        coordinator = TransactionCoordinator()
        committed_before = coordinator.stats["committed"]
        txn = Transaction(coordinator)
        assert txn.commit() is True
        assert coordinator.stats["committed"] == committed_before, \
            "an empty transaction needs no validate/apply round trip"
