"""Tests for the migration substrate: movers, forwarding, compaction."""

import pytest

import repro
from repro.apps.counter import Counter
from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.kernel.errors import DanglingReference
from repro.migration.forwarding import (
    compact,
    final_location,
    forwarding_chain,
    scrub,
)
from repro.migration.mover import ensure_mover, migrate, mover_proxy


@pytest.fixture
def movable(star):
    system, server, clients = star
    counter = Counter()
    space = get_space(server)
    ref = space.export(counter, policy="migrating")
    for ctx in clients:
        ensure_mover(get_space(ctx))
    return system, server, clients, counter, ref


class TestMigrate:
    def test_basic_migration(self, movable):
        system, server, clients, counter, ref = movable
        new_ref = migrate(clients[0], ref)
        assert new_ref.context_id == clients[0].context_id
        assert new_ref.oid == ref.oid
        assert new_ref.epoch == ref.epoch + 1
        assert new_ref.policy == ref.policy

    def test_state_travels(self, movable):
        system, server, clients, counter, ref = movable
        counter.incr(41)
        migrate(clients[0], ref)
        moved = clients[0].exports[ref.oid].obj
        assert moved.value == 41
        assert moved is not counter

    def test_source_keeps_forwarding_pointer(self, movable):
        system, server, clients, counter, ref = movable
        new_ref = migrate(clients[0], ref)
        assert server.exports[ref.oid].moved_to == new_ref

    def test_migration_is_idempotent(self, movable):
        system, server, clients, counter, ref = movable
        first = migrate(clients[0], ref)
        again = migrate(clients[0], ref)
        assert again == first

    def test_migrate_to_current_home_is_noop(self, movable):
        system, server, clients, counter, ref = movable
        same = migrate(server, ref, server.context_id)
        assert same == ref

    def test_unmigratable_object_returns_none(self, star):
        system, server, clients = star

        class Opaque:
            @repro.operation
            def touch(self):
                return 1

        space = get_space(server)
        ref = space.export(Opaque())
        ensure_mover(space)
        ensure_mover(get_space(clients[0]))
        assert migrate(clients[0], ref) is None

    def test_unreachable_source_returns_none(self, movable):
        system, server, clients, counter, ref = movable
        server.node.crash()
        assert migrate(clients[0], ref) is None

    def test_policy_config_travels(self, star):
        system, server, clients = star
        store = KVStore()
        space = get_space(server)
        ref = space.export(store, policy="migrating",
                           config={"migrate_after": 17})
        ensure_mover(get_space(clients[0]))
        migrate(clients[0], ref)
        entry = clients[0].exports[ref.oid]
        assert entry.policy_config["migrate_after"] == 17

    def test_migration_charges_state_transfer(self, movable):
        system, server, clients, counter, ref = movable
        mark = system.trace.mark()
        migrate(clients[0], ref)
        moves = [ev for ev in system.trace.since(mark) if ev.kind == "migrate"]
        assert len(moves) == 1


class TestForwardingChains:
    def _chain(self, system, contexts, hops=3):
        origin = contexts[0]
        counter = Counter()
        ref = get_space(origin).export(counter, policy="migrating")
        for ctx in contexts:
            ensure_mover(get_space(ctx))
        current = ref
        for hop in range(1, hops + 1):
            current = migrate(contexts[hop], current,
                              contexts[hop].context_id)
        return ref, current

    def test_chain_length(self, star):
        system, server, clients = star
        ref, final = self._chain(system, [server] + clients, hops=3)
        chain = forwarding_chain(system, ref)
        assert len(chain) == 4
        assert chain[-1] == final

    def test_final_location(self, star):
        system, server, clients = star
        ref, final = self._chain(system, [server] + clients, hops=3)
        assert final_location(system, ref) == final

    def test_stale_proxy_chases_whole_chain(self, star):
        system, server, clients = star
        ref, final = self._chain(system, [server] + clients, hops=2)
        # A proxy bound to the original location follows redirects to the end.
        extra = system.add_node("late").create_context("m")
        proxy = get_space(extra).bind_ref(ref, handshake=False)
        proxy.incr()
        assert proxy.proxy_ref.context_id == final.context_id

    def test_compact_shortens_chain(self, star):
        system, server, clients = star
        ref, final = self._chain(system, [server] + clients, hops=3)
        for ctx in [server] + clients:
            compact(ctx.space)
        assert len(forwarding_chain(system, ref)) == 2

    def test_scrub_dangles_stale_references(self, star):
        system, server, clients = star
        ref, final = self._chain(system, [server] + clients, hops=1)
        assert scrub(get_space(server)) == 1
        extra = system.add_node("late").create_context("m")
        proxy = get_space(extra).bind_ref(ref, handshake=False)
        with pytest.raises(DanglingReference):
            proxy.incr()


class TestMoverService:
    def test_ensure_mover_idempotent(self, star):
        system, server, clients = star
        space = get_space(server)
        assert ensure_mover(space) == ensure_mover(space)

    def test_mover_proxy_reaches_remote_mover(self, star):
        system, server, clients = star
        ensure_mover(get_space(server))
        proxy = mover_proxy(clients[0], server.context_id)
        with pytest.raises(Exception):
            proxy.migrate_to("nothing", clients[0].context_id)
