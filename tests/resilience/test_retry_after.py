"""Tests: the client RetryPolicy honors server retry-after hints.

A shed call carries the absolute virtual time at which the server expects
to have room (``K_OVERLOAD`` header).  An honoring client waits *exactly*
that long — not its backoff schedule — and retransmits; the hint composes
with deadlines (no point waiting past one) and with the attempts budget.
"""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.kernel.admission import install_admission
from repro.kernel.errors import Overloaded
from repro.naming.bootstrap import bind, install_name_service, register
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryPolicy


def _shedding_system(seed=11, rate=1.0, burst=1.0):
    """One server whose bucket admits exactly one call, then sheds for
    ``1/rate`` seconds; alice spends the token, bob gets the hint."""
    system = repro.make_system(seed=seed)
    server = system.add_node("server").create_context("main")
    alice = system.add_node("alice").create_context("main")
    bob = system.add_node("bob").create_context("main")
    install_name_service(server)
    register(server, "kv", KVStore())
    kv_a, kv_b = bind(alice, "kv"), bind(bob, "kv")
    install_admission(server.node, rate=rate, burst=burst)
    return system, alice, bob, kv_a, kv_b


def _hint_for(seed=11):
    """The hint bob's first call is shed with (read via a no-wait run)."""
    system, alice, bob, kv_a, kv_b = _shedding_system(seed=seed)
    system.rpc.retry_policy = RetryPolicy(attempts=1)
    kv_a.put("x", 1)
    with pytest.raises(Overloaded) as err:
        kv_b.put("x", 2)
    return err.value.retry_after


class TestRetryAfter:
    def test_hint_is_waited_exactly_not_backoff(self):
        # Same seed twice: first run reads the hint the server will give,
        # second run lets the client honor it.
        hint = _hint_for(seed=11)
        assert hint is not None and hint > 0.5, \
            "a 1-token/s bucket hints roughly one second out"
        system, alice, bob, kv_a, kv_b = _shedding_system(seed=11)
        kv_a.put("x", 1)
        kv_b.put("x", 2)    # shed once, then honored and retransmitted
        assert system.rpc.stats["overload_sheds"] == 1
        assert system.rpc.stats["retry_after_waits"] == 1
        # The client resumed at the hint, then paid one more round trip —
        # nowhere near the backoff schedule's sub-hint pacing.
        assert bob.clock.now >= hint
        assert bob.clock.now - hint < 0.05, \
            "the wait is the hinted virtual duration, not backoff"
        assert kv_a.get("x") == 2, "the honored retransmission executed"

    def test_hint_beyond_deadline_abandons_immediately(self):
        system, alice, bob, kv_a, kv_b = _shedding_system(seed=11)
        kv_a.put("x", 1)
        invoke = bob.clock.now
        deadline = Deadline.after(invoke, 0.05)   # expires before the hint
        with pytest.raises(Overloaded) as err:
            kv_b.proxy_remote("put", ("x", 2), {},
                              retry=RetryPolicy(attempts=4),
                              deadline=deadline)
        assert err.value.retry_after is not None
        assert err.value.retry_after >= deadline.expires_at
        assert bob.clock.now < err.value.retry_after, \
            "no waiting toward a hint the deadline forbids"
        assert system.rpc.stats["retry_after_waits"] == 0

    def test_honoring_can_be_disabled(self):
        system, alice, bob, kv_a, kv_b = _shedding_system(seed=11)
        system.rpc.retry_policy = RetryPolicy(attempts=4,
                                              honor_retry_after=False)
        kv_a.put("x", 1)
        before = bob.clock.now
        with pytest.raises(Overloaded) as err:
            kv_b.put("x", 2)
        assert err.value.retry_after is not None
        assert bob.clock.now - before < 0.05, \
            "no hint wait and no backoff grind: surface the shed at once"
        assert system.rpc.stats["retry_after_waits"] == 0

    def test_attempts_budget_caps_honored_waits(self):
        # burst=1, rate=1: every other call sheds.  attempts=2 allows one
        # honored wait per call, so every call eventually lands.
        system, alice, bob, kv_a, kv_b = _shedding_system(seed=11)
        system.rpc.retry_policy = RetryPolicy(attempts=2)
        for value in range(4):
            kv_b.put("k", value)
        assert kv_b.get("k") == 3

    def test_from_config_round_trip(self):
        policy = RetryPolicy.from_config({"retry_after": False})
        assert policy.honor_retry_after is False
        assert RetryPolicy.from_config({}).honor_retry_after is True
        assert RetryPolicy.from_config(None).honor_retry_after is True
