"""Tests for circuit breakers and their registry (repro.resilience.breaker)."""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerRegistry,
    CircuitBreaker,
    ensure_breakers,
)


def make_breaker(**kwargs):
    params = {"failure_threshold": 3, "reset_timeout": 1.0,
              "half_open_probes": 1}
    params.update(kwargs)
    return CircuitBreaker(caller="a/main", target="b/main", **params)


class TestStateMachine:
    def test_stays_closed_below_the_threshold(self):
        breaker = make_breaker()
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state(0.2) == CLOSED
        assert breaker.allow(0.2)

    def test_success_resets_the_failure_count(self):
        breaker = make_breaker()
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state(0.5) == CLOSED

    def test_trips_open_at_the_threshold(self):
        breaker = make_breaker()
        for step in range(3):
            breaker.record_failure(step * 0.1)
        assert breaker.state(0.3) == OPEN
        assert not breaker.allow(0.3)
        assert breaker.stats["fast_fails"] == 1
        assert breaker.stats["trips"] == 1

    def test_half_open_after_the_cooldown(self):
        breaker = make_breaker()
        for step in range(3):
            breaker.record_failure(float(step))
        assert breaker.state(2.9) == OPEN
        assert breaker.state(3.1) == HALF_OPEN

    def test_half_open_admits_a_bounded_number_of_probes(self):
        breaker = make_breaker()
        for step in range(3):
            breaker.record_failure(float(step))
        assert breaker.allow(3.5)          # the probe
        assert not breaker.allow(3.5)      # second caller is refused
        assert breaker.stats["fast_fails"] == 1

    def test_probe_success_closes(self):
        breaker = make_breaker()
        for step in range(3):
            breaker.record_failure(float(step))
        assert breaker.allow(3.5)
        breaker.record_success(3.6)
        assert breaker.state(3.7) == CLOSED
        assert breaker.allow(3.7)
        assert breaker.stats["resets"] == 1

    def test_probe_failure_reopens_and_restarts_the_cooldown(self):
        breaker = make_breaker()
        for step in range(3):
            breaker.record_failure(float(step))
        assert breaker.allow(3.5)
        breaker.record_failure(3.6)
        assert breaker.state(3.7) == OPEN
        assert breaker.state(4.5) == OPEN, "cooldown restarted at 3.6"
        assert breaker.state(4.7) == HALF_OPEN

    def test_straggler_failure_while_open_restarts_the_cooldown(self):
        breaker = make_breaker()
        for step in range(3):
            breaker.record_failure(float(step))
        breaker.record_failure(2.9)   # an in-flight call fails late
        assert breaker.state(3.5) == OPEN, "cooldown now runs from 2.9"
        assert breaker.state(4.0) == HALF_OPEN

    def test_forced_trip_and_reset(self):
        breaker = make_breaker()
        breaker.trip(0.0)
        assert breaker.state(0.1) == OPEN
        breaker.reset(0.2)
        assert breaker.state(0.3) == CLOSED
        assert breaker.consecutive_failures == 0


class TestRegistry:
    def test_between_creates_once_and_keeps_configuration(self, system):
        registry = BreakerRegistry(system, failure_threshold=4)
        first = registry.between("a/main", "b/main", failure_threshold=2)
        again = registry.between("a/main", "b/main", failure_threshold=9)
        assert first is again
        assert first.failure_threshold == 2, "overrides apply at creation only"
        assert len(registry) == 1

    def test_configure_overrides_an_existing_breaker(self, system):
        registry = BreakerRegistry(system)
        registry.between("a/main", "b/main")   # created with defaults
        breaker = registry.configure("a/main", "b/main",
                                     failure_threshold=2, reset_timeout=0.5)
        assert breaker.failure_threshold == 2
        assert breaker.reset_timeout == 0.5

    def test_outcome_feed_counts_and_trips(self, system):
        registry = BreakerRegistry(system, failure_threshold=2)
        registry.record_success("a/main", "b/main", 0.0)
        registry.record_failure("a/main", "b/main", 0.1)
        registry.record_failure("a/main", "b/main", 0.2)
        assert registry.counters.get("rpc.successes") == 1
        assert registry.counters.get("rpc.failures") == 2
        assert registry.between("a/main", "b/main").state(0.3) == OPEN

    def test_transitions_reach_trace_and_counters(self, system):
        registry = BreakerRegistry(system, failure_threshold=1)
        registry.record_failure("a/main", "b/main", 0.5)
        events = [ev for ev in system.trace.events if ev.kind == "breaker"]
        assert len(events) == 1
        assert events[0].label == "closed->open"
        assert registry.counters.get("breaker.transitions") == 1
        assert registry.counters.get("breaker.open") == 1

    def test_detector_exchange_trips_and_resets_per_target(self, system):
        registry = BreakerRegistry(system)
        registry.between("a/main", "t/main")
        registry.between("b/main", "t/main")
        registry.between("a/main", "other/main")
        assert registry.trip_target("t/main", 0.0) == 2
        assert registry.open_toward("t/main", 0.1) == ["a/main", "b/main"]
        assert registry.open_toward("other/main", 0.1) == []
        assert registry.reset_target("t/main", 0.2) == 2
        assert registry.open_toward("t/main", 0.3) == []

    def test_snapshot_reports_every_pair(self, system):
        registry = BreakerRegistry(system, failure_threshold=1)
        registry.record_failure("a/main", "b/main", 0.0)
        registry.record_success("a/main", "c/main", 0.0)
        snap = registry.snapshot(0.1)
        assert snap[("a/main", "b/main")] == OPEN
        assert snap[("a/main", "c/main")] == CLOSED

    def test_ensure_breakers_is_idempotent(self, system):
        first = ensure_breakers(system, failure_threshold=2)
        second = ensure_breakers(system, failure_threshold=9)
        assert first is second
        assert system.breakers is first
        assert first.defaults["failure_threshold"] == 2
