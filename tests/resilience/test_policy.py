"""Tests for the resilient proxy policy (repro.resilience.policy)."""

import pytest

from repro.apps.kv import KVStore
from repro.kernel.errors import CircuitOpen, DistributionError
from repro.naming.bootstrap import bind, register
from repro.resilience.policy import ResilientProxy, resilient_group

BREAKER = {"failure_threshold": 2, "reset_timeout": 5.0}


def seeded_store():
    store = KVStore()
    store.put("k", "seeded")
    return store


@pytest.fixture
def deployed(star):
    """A resilient group on (server, client0, client1), bound from client2."""
    system, server, clients = star
    group = [server, clients[0], clients[1]]
    ref = resilient_group(group, seeded_store,
                          retry={"attempts": 2, "multiplier": 2.0,
                                 "jitter": 0.0},
                          call_budget=0.5, breaker=BREAKER)
    register(server, "kv", ref)
    proxy = bind(clients[2], "kv")
    return system, group, clients[2], proxy


class TestDeployment:
    def test_clients_receive_the_resilient_proxy(self, deployed):
        system, group, client, proxy = deployed
        assert isinstance(proxy, ResilientProxy)

    def test_binding_installs_the_breaker_registry(self, deployed):
        system, group, client, proxy = deployed
        assert system.breakers is not None

    def test_happy_path_reads_and_writes(self, deployed):
        system, group, client, proxy = deployed
        assert proxy.get("k") == "seeded"
        proxy.put("k2", 42)
        assert proxy.get("k2") == 42


class TestFailover:
    def test_reads_fail_over_to_a_replica(self, deployed):
        system, group, client, proxy = deployed
        group[0].node.crash()
        assert proxy.get("k") == "seeded", \
            "the replica serves the read while the primary is down"
        assert proxy.proxy_stats["failovers"] >= 1

    def test_writes_do_not_fail_over(self, deployed):
        system, group, client, proxy = deployed
        group[0].node.crash()
        with pytest.raises(DistributionError):
            proxy.put("k", "update")
        assert proxy.proxy_stats["failovers"] == 0

    def test_stale_read_when_every_candidate_is_down(self, deployed):
        system, group, client, proxy = deployed
        assert proxy.get("k") == "seeded"   # populates the stale cache
        for ctx in group:
            ctx.node.crash()
        assert proxy.get("k") == "seeded"
        assert proxy.proxy_stats["stale_serves"] == 1

    def test_stale_reads_can_be_disabled(self, deployed):
        system, group, client, proxy = deployed
        proxy.proxy_config["stale_reads"] = False
        assert proxy.get("k") == "seeded"
        for ctx in group:
            ctx.node.crash()
        with pytest.raises(DistributionError):
            proxy.get("k")


class TestBreakerGate:
    def _trip_all(self, system, group, client):
        now = client.clock.now
        for ctx in group:
            system.breakers.configure(client.context_id, ctx.context_id,
                                      **BREAKER).trip(now)

    def test_fully_open_breakers_fail_fast_with_circuit_open(self, deployed):
        system, group, client, proxy = deployed
        self._trip_all(system, group, client)
        before = client.clock.now
        with pytest.raises(CircuitOpen):
            proxy.get("never-read")
        elapsed = client.clock.now - before
        assert elapsed < system.costs.rpc_timeout, \
            "a fast fail must cost local checks, not a retry budget"
        assert proxy.proxy_stats["fast_fails"] == len(group)

    def test_repeated_failures_trip_the_breaker(self, deployed):
        system, group, client, proxy = deployed
        group[0].node.crash()
        for _ in range(BREAKER["failure_threshold"]):
            with pytest.raises(DistributionError):
                proxy.put("k", "x")
        before = client.clock.now
        with pytest.raises(CircuitOpen):
            proxy.put("k", "x")
        assert client.clock.now - before < system.costs.rpc_timeout

    def test_stale_cache_beats_circuit_open_for_reads(self, deployed):
        system, group, client, proxy = deployed
        assert proxy.get("k") == "seeded"
        self._trip_all(system, group, client)
        assert proxy.get("k") == "seeded"
        assert proxy.proxy_stats["stale_serves"] == 1


class TestFallback:
    def test_fallback_hook_is_the_last_resort(self, deployed):
        system, group, client, proxy = deployed
        proxy.proxy_fallback = lambda verb, args, kwargs: f"fallback:{verb}"
        for ctx in group:
            ctx.node.crash()
        assert proxy.get("never-read") == "fallback:get"
        assert proxy.put("k", "x") == "fallback:put"
        assert proxy.proxy_stats["fallbacks"] == 2


class TestDeadlineBudget:
    def test_failures_are_capped_at_the_call_budget(self, deployed):
        system, group, client, proxy = deployed
        for ctx in group:
            ctx.node.crash()
        before = client.clock.now
        with pytest.raises(DistributionError):
            proxy.put("k", "x")
        # A write only tries the primary; its whole failure must fit in the
        # 0.5 s call budget (plus marshalling epsilon), not the unbounded
        # fixed-retry schedule.
        assert client.clock.now - before <= 0.5 + 0.01

    def test_retry_schedule_comes_from_the_config(self, deployed):
        system, group, client, proxy = deployed
        assert proxy.proxy_retry.attempts == 2
        assert proxy.proxy_retry.multiplier == 2.0
