"""Tests for hedged reads (repro.resilience.policy + retry.HedgePolicy)."""

import pytest

from repro.apps.kv import KVStore
from repro.kernel.network import LinkSpec
from repro.naming.bootstrap import bind, register
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.policy import resilient_group
from repro.resilience.retry import HedgePolicy

BREAKER = {"failure_threshold": 2, "reset_timeout": 5.0}
RETRY = {"attempts": 3, "multiplier": 2.0, "jitter": 0.0, "adaptive": True}


def seeded_store():
    store = KVStore()
    store.put("k", "seeded")
    return store


@pytest.fixture
def hedged(star):
    """A hedged resilient group on (server, client0, client1), bound from
    client2, with the link estimators warmed."""
    system, server, clients = star
    group = [server, clients[0], clients[1]]
    ref = resilient_group(group, seeded_store, retry=RETRY,
                          breaker=BREAKER, hedge=True)
    register(server, "kv", ref)
    proxy = bind(clients[2], "kv")
    for _ in range(6):
        proxy.get("k")
    return system, group, clients[2], proxy


def slow_primary_link(system, client, primary):
    """Make the client->primary link ~20x slower than the default, so the
    primary's answer always arrives after the hedge window."""
    spec = LinkSpec(latency=system.costs.remote_latency * 20,
                    byte_cost=system.costs.byte_cost)
    system.network.set_link(client.node.name, primary.node.name, spec)


class TestHedgePolicy:
    def test_none_and_false_disable(self):
        assert HedgePolicy.from_config(None) is None
        assert HedgePolicy.from_config(False) is None

    def test_true_enables_the_adaptive_delay(self):
        policy = HedgePolicy.from_config(True)
        assert policy is not None and policy.delay is None

    def test_dict_sets_an_explicit_delay(self):
        assert HedgePolicy.from_config({"delay": 0.004}).delay == 0.004

    def test_instances_pass_through(self):
        policy = HedgePolicy(delay=0.001)
        assert HedgePolicy.from_config(policy) is policy

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay=-0.001)


class TestHedgedReads:
    def test_installs_the_latency_tracker(self, hedged):
        system, group, client, proxy = hedged
        assert system.latency is not None

    def test_fast_primary_never_hedges(self, hedged):
        system, group, client, proxy = hedged
        for _ in range(20):
            assert proxy.get("k") == "seeded"
        assert proxy.proxy_stats["hedges"] == 0, \
            "a healthy link answering inside the hedge window must not " \
            "pay for backups"

    def test_slow_primary_hedges_and_the_backup_wins(self, hedged):
        system, group, client, proxy = hedged
        slow_primary_link(system, client, group[0])
        before = client.clock.now
        assert proxy.get("k") == "seeded"
        elapsed = client.clock.now - before
        assert proxy.proxy_stats["hedges"] >= 1
        assert proxy.proxy_stats["hedge_wins"] >= 1
        assert elapsed < system.costs.remote_latency * 20, \
            "the winning backup must return before the slow primary's " \
            "round trip completes"

    def test_crashed_primary_is_covered_by_the_backup(self, hedged):
        system, group, client, proxy = hedged
        group[0].node.crash()
        assert proxy.get("k") == "seeded"
        assert proxy.proxy_stats["hedge_wins"] >= 1

    def test_writes_never_hedge(self, hedged):
        system, group, client, proxy = hedged
        slow_primary_link(system, client, group[0])
        proxy.put("k2", 42)
        assert proxy.proxy_stats["hedges"] == 0

    def test_loser_is_discarded_into_the_trace(self, hedged):
        system, group, client, proxy = hedged
        slow_primary_link(system, client, group[0])
        proxy.get("k")
        dropped = system.trace.select(
            kind="promise",
            predicate=lambda ev: ev.label == "dropped-unwaited")
        assert dropped, "the losing leg must be discarded, not leaked"

    def test_both_legs_lost_falls_back_to_the_serial_walk(self, hedged):
        system, group, client, proxy = hedged
        for ctx in group:
            ctx.node.crash()
        # The stale cache was populated by the warmup reads; after the
        # hedge pair and the serial walk both fail, degradation serves it.
        assert proxy.get("k") == "seeded"
        assert proxy.proxy_stats["stale_serves"] == 1

    def test_backup_avoids_replicas_with_open_breakers(self, hedged):
        system, group, client, proxy = hedged
        slow_primary_link(system, client, group[0])
        replicas = proxy._resolve_replicas()
        nearest = proxy._hedge_candidate(replicas, system.breakers,
                                         BREAKER, client.clock.now)
        system.breakers.configure(client.context_id,
                                  nearest.proxy_ref.context_id,
                                  **BREAKER).trip(client.clock.now)
        other = proxy._hedge_candidate(replicas, system.breakers,
                                       BREAKER, client.clock.now)
        assert other is not None
        assert other.proxy_ref.context_id != nearest.proxy_ref.context_id

    def test_explicit_delay_overrides_the_adaptive_one(self, star):
        system, server, clients = star
        group = [server, clients[0]]
        ref = resilient_group(group, seeded_store, retry=RETRY,
                              breaker=BREAKER, hedge={"delay": 0.007})
        register(server, "kv", ref)
        proxy = bind(clients[2], "kv")
        proxy.get("k")
        assert proxy._hedge_delay() == 0.007


class TestWouldAllow:
    def test_closed_allows_without_side_effects(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1.0)
        assert breaker.would_allow(0.0)
        assert breaker.stats["fast_fails"] == 0

    def test_open_refuses_without_counting_a_fast_fail(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(0.0)
        assert not breaker.would_allow(0.5)
        assert breaker.stats["fast_fails"] == 0, \
            "a survey is not a refused call"

    def test_half_open_probe_is_not_consumed(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 half_open_probes=1)
        breaker.record_failure(0.0)
        assert breaker.would_allow(2.0)
        assert breaker.would_allow(2.0), \
            "surveying twice must not burn the single half-open probe"
        assert breaker.allow(2.0), "the probe is still there for the dial"
        assert not breaker.allow(2.0)
