"""Tests for per-link adaptive timeouts (repro.resilience.latency)."""

import pytest

import repro
from repro.apps.kv import KVStore
from repro.naming.bootstrap import bind, register
from repro.resilience.latency import (LatencyTracker, LinkEstimator,
                                      ensure_latency)
from repro.resilience.retry import RetryPolicy


class TestLinkEstimator:
    def test_first_sample_seeds_srtt_and_rttvar(self):
        est = LinkEstimator()
        est.observe(0.010)
        assert est.srtt == pytest.approx(0.010)
        assert est.rttvar == pytest.approx(0.005)
        assert est.samples == 1

    def test_jacobson_recurrences(self):
        est = LinkEstimator()
        est.observe(0.010)
        est.observe(0.020)
        # rttvar from the *previous* srtt (RFC 6298 ordering), then srtt.
        assert est.rttvar == pytest.approx(0.75 * 0.005 + 0.25 * 0.010)
        assert est.srtt == pytest.approx(0.875 * 0.010 + 0.125 * 0.020)

    def test_rto_is_srtt_plus_k_deviations(self):
        est = LinkEstimator()
        est.observe(0.010)
        assert est.rto() == pytest.approx(0.010 + 4.0 * 0.005)

    def test_rto_never_drops_below_the_floor(self):
        est = LinkEstimator(min_timeout=0.002)
        for _ in range(50):
            est.observe(1e-6)
        assert est.rto() == 0.002

    def test_stable_link_converges_to_a_tight_rto(self):
        est = LinkEstimator()
        for _ in range(100):
            est.observe(0.010)
        assert est.srtt == pytest.approx(0.010)
        assert est.rto() < 0.012, \
            "a deterministic link's RTO must collapse toward its RTT"

    def test_hedge_delay_keeps_a_margin_on_stable_links(self):
        est = LinkEstimator()
        for _ in range(100):
            est.observe(0.010)
        # The mean deviation collapses to ~0; without the proportional
        # floor the delay would sit *at* the mean and hedge every other
        # request on an ordinary link.
        assert est.hedge_delay() >= 0.010 * 1.4
        assert est.hedge_delay() < est.rto() * 2

    def test_maturity_needs_warmup_samples(self):
        est = LinkEstimator(warmup=3)
        assert not est.mature
        for _ in range(3):
            est.observe(0.01)
        assert est.mature

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            LinkEstimator().observe(-0.001)


class TestLatencyTracker:
    def test_links_are_keyed_per_pair(self, system):
        tracker = LatencyTracker(system)
        tracker.observe("a", "b", 0.01)
        tracker.observe("a", "c", 0.05)
        assert tracker.peek("a", "b").srtt == pytest.approx(0.01)
        assert tracker.peek("a", "c").srtt == pytest.approx(0.05)
        assert tracker.peek("b", "a") is None
        assert len(tracker) == 2
        assert tracker.samples_total == 2

    def test_patience_falls_back_until_mature(self, system):
        tracker = LatencyTracker(system, warmup=2)
        assert tracker.patience("a", "b", 0.02) == 0.02
        tracker.observe("a", "b", 0.004)
        assert tracker.patience("a", "b", 0.02) == 0.02
        tracker.observe("a", "b", 0.004)
        assert tracker.patience("a", "b", 0.02) < 0.02

    def test_hedge_delay_falls_back_until_mature(self, system):
        tracker = LatencyTracker(system, warmup=1)
        assert tracker.hedge_delay("a", "b", 0.01) == 0.01
        tracker.observe("a", "b", 0.002)
        assert tracker.hedge_delay("a", "b", 0.01) < 0.01

    def test_budget_is_the_schedule_paced_by_the_rto(self, system):
        tracker = LatencyTracker(system, warmup=1)
        policy = RetryPolicy(attempts=3, multiplier=2.0)
        assert tracker.budget("a", "b", policy) is None
        tracker.observe("a", "b", 0.010)
        rto = tracker.peek("a", "b").rto()
        assert tracker.budget("a", "b", policy) == \
            pytest.approx(policy.total_wait(rto))

    def test_snapshot_reports_every_link(self, system):
        tracker = LatencyTracker(system)
        tracker.observe("a", "b", 0.01)
        snap = tracker.snapshot()
        assert set(snap) == {("a", "b")}
        assert snap[("a", "b")] == tracker.peek("a", "b").rto()

    def test_ensure_latency_installs_once(self, system):
        assert system.latency is None
        tracker = ensure_latency(system, warmup=7)
        assert system.latency is tracker
        assert ensure_latency(system, warmup=99) is tracker
        assert tracker.defaults["warmup"] == 7


class TestProtocolFeed:
    @pytest.fixture
    def kv(self, pair):
        system, server, client = pair
        register(server, "kv", KVStore())
        proxy = repro.bind(client, "kv")
        proxy.put("k", 1)
        return system, server, client, proxy

    def test_no_tracker_means_no_feeding(self, kv):
        system, server, client, proxy = kv
        proxy.get("k")
        assert system.latency is None, \
            "plain systems must not grow latency state behind their back"

    def test_successful_calls_feed_the_installed_tracker(self, kv):
        system, server, client, proxy = kv
        tracker = ensure_latency(system)
        proxy.get("k")
        link = tracker.peek(client.context_id, proxy.proxy_ref.context_id)
        assert link is not None and link.samples >= 1
        assert 0 < link.srtt < system.costs.rpc_timeout

    def test_adaptive_patience_undercuts_the_global_timeout(self, kv):
        """The acceptance bar: a warm LAN link's retry interval must sit
        below the global ``rpc_timeout``-derived patience."""
        system, server, client, proxy = kv
        tracker = ensure_latency(system)
        for _ in range(tracker.defaults["warmup"]):
            proxy.get("k")
        link_patience = tracker.patience(
            client.context_id, proxy.proxy_ref.context_id,
            system.costs.rpc_timeout)
        assert link_patience < system.costs.rpc_timeout / 2

    def test_adaptive_policy_detects_loss_sooner(self, kv):
        """A lost call under an adaptive warm link must fail faster than
        the same schedule paced by the global timeout."""
        system, server, client, proxy = kv
        ensure_latency(system)
        for _ in range(8):
            proxy.get("k")
        server.node.crash()
        schedule = dict(attempts=2, multiplier=1.0, jitter=0.0)

        before = client.clock.now
        with pytest.raises(repro.kernel.errors.RpcTimeout):
            proxy.proxy_remote("get", ("k",), {},
                               retry=RetryPolicy(**schedule))
        global_paced = client.clock.now - before

        before = client.clock.now
        with pytest.raises(repro.kernel.errors.RpcTimeout):
            proxy.proxy_remote("get", ("k",), {},
                               retry=RetryPolicy(**schedule, adaptive=True))
        adaptive_paced = client.clock.now - before
        assert adaptive_paced < global_paced / 2
