"""Tests for the retry-policy engine (repro.resilience.retry)."""

import random

import pytest

from repro.kernel.params import DEFAULT_COSTS
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy


class TestFixed:
    def test_every_interval_is_the_base_patience(self):
        policy = RetryPolicy.fixed()
        for attempt in range(9):
            assert policy.interval(attempt, 0.02) == pytest.approx(0.02)

    def test_budget_defers_to_the_cost_model(self):
        assert DEFAULT_RETRY.budget(DEFAULT_COSTS) == \
            1 + DEFAULT_COSTS.rpc_max_retries

    def test_explicit_attempts_win(self):
        assert RetryPolicy.fixed(attempts=3).budget(DEFAULT_COSTS) == 3

    def test_no_rng_draw_when_jitter_is_zero(self):
        """The default policy must not touch the stream — the legacy retry
        loop drew nothing, and determinism of old seeds depends on it."""
        class Explosive(random.Random):
            def random(self):
                raise AssertionError("jitter-free policy drew from the rng")
        assert DEFAULT_RETRY.interval(2, 0.02, Explosive()) == pytest.approx(0.02)


class TestExponential:
    def test_intervals_grow_by_the_multiplier(self):
        policy = RetryPolicy(attempts=4, multiplier=2.0)
        waits = [policy.interval(a, 0.01) for a in range(4)]
        assert waits == pytest.approx([0.01, 0.02, 0.04, 0.08])

    def test_max_interval_caps_the_growth(self):
        policy = RetryPolicy(attempts=6, multiplier=2.0, max_interval=0.03)
        assert policy.interval(5, 0.01) == pytest.approx(0.03)

    def test_jitter_stays_within_its_band(self):
        policy = RetryPolicy(attempts=4, multiplier=2.0, jitter=0.1)
        rng = random.Random(7)
        for attempt in range(4):
            base = 0.01 * 2.0 ** attempt
            wait = policy.interval(attempt, 0.01, rng)
            assert base * 0.9 <= wait <= base * 1.1

    def test_jitter_is_deterministic_under_a_seeded_stream(self):
        policy = RetryPolicy.exponential()
        first = [policy.interval(a, 0.01, random.Random(42)) for a in range(4)]
        second = [policy.interval(a, 0.01, random.Random(42)) for a in range(4)]
        assert first == second

    def test_total_wait_sums_the_schedule(self):
        policy = RetryPolicy(attempts=3, multiplier=2.0)
        assert policy.total_wait(0.01) == pytest.approx(0.01 + 0.02 + 0.04)


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)

    def test_rejects_shrinking_multiplier(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_rejects_out_of_band_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestFromConfig:
    def test_none_yields_the_exponential_default(self):
        policy = RetryPolicy.from_config(None)
        assert policy.multiplier == 2.0
        assert policy.attempts == 4

    def test_none_yields_the_given_default(self):
        policy = RetryPolicy.from_config(None, default=DEFAULT_RETRY)
        assert policy is DEFAULT_RETRY

    def test_dict_overrides_field_by_field(self):
        policy = RetryPolicy.from_config(
            {"attempts": 6, "multiplier": 3.0, "jitter": 0.0,
             "max_interval": 0.5})
        assert (policy.attempts, policy.multiplier) == (6, 3.0)
        assert policy.jitter == 0.0
        assert policy.max_interval == 0.5

    def test_adaptive_defaults_off(self):
        assert RetryPolicy.from_config(None).adaptive is False
        assert RetryPolicy.exponential().adaptive is False

    def test_adaptive_from_config_and_constructor(self):
        assert RetryPolicy.from_config({"adaptive": True}).adaptive is True
        assert RetryPolicy.exponential(adaptive=True).adaptive is True
