"""Tests for per-call deadlines (repro.resilience.deadline)."""

import pytest

from repro.kernel.errors import DeadlineExceeded
from repro.resilience.deadline import DEADLINE_HEADER, Deadline


class TestBasics:
    def test_after_builds_an_absolute_expiry(self):
        deadline = Deadline.after(1.5, 0.25)
        assert deadline.expires_at == pytest.approx(1.75)

    def test_remaining_counts_down_and_goes_negative(self):
        deadline = Deadline(2.0)
        assert deadline.remaining(1.5) == pytest.approx(0.5)
        assert deadline.remaining(2.5) == pytest.approx(-0.5)

    def test_expiry_boundary_is_inclusive(self):
        deadline = Deadline(2.0)
        assert not deadline.expired(1.999)
        assert deadline.expired(2.0)
        assert deadline.expired(2.001)

    def test_clamp_cuts_waits_at_the_expiry(self):
        deadline = Deadline(2.0)
        assert deadline.clamp(1.5) == 1.5
        assert deadline.clamp(3.0) == 2.0

    def test_check_raises_once_spent(self):
        deadline = Deadline(2.0)
        deadline.check(1.0)
        with pytest.raises(DeadlineExceeded):
            deadline.check(2.0, "probe")


class TestMerge:
    def test_tightest_wins(self):
        tight = Deadline(1.0)
        loose = Deadline(5.0)
        assert Deadline.merge(loose, tight) is tight
        assert Deadline.merge(tight, loose) is tight

    def test_none_entries_are_ignored(self):
        only = Deadline(1.0)
        assert Deadline.merge(None, only, None) is only

    def test_all_none_is_none(self):
        assert Deadline.merge(None, None) is None
        assert Deadline.merge() is None


class TestWireFormat:
    def test_roundtrip_through_headers(self):
        headers: dict = {}
        Deadline(3.25).to_headers(headers)
        assert headers[DEADLINE_HEADER] == 3.25
        recovered = Deadline.from_headers(headers)
        assert recovered == Deadline(3.25)

    def test_absent_header_means_no_deadline(self):
        assert Deadline.from_headers({}) is None
        assert Deadline.from_headers(None) is None
        assert Deadline.from_headers({"other": 1}) is None
