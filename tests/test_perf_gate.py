"""Tests for the multi-baseline CI perf gate (tools/perf_gate.py)."""

import json
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
GATE = ROOT / "tools" / "perf_gate.py"


def run_gate(*args):
    return subprocess.run([sys.executable, str(GATE), *args],
                          capture_output=True, text=True, cwd=ROOT)


def _record(name):
    with open(ROOT / name, encoding="utf-8") as handle:
        return json.load(handle)


class TestPerfGate:
    def test_identical_pairs_pass(self):
        result = run_gate("--pair", "BENCH_e18.json:BENCH_e18.json",
                          "--pair", "BENCH_e19.json:BENCH_e19.json")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "perf gate: ok" in result.stdout
        assert "e18 (BENCH_e18.json): ok" in result.stdout
        assert "e19 (BENCH_e19.json): ok" in result.stdout

    def test_legacy_single_pair_flags_still_work(self):
        result = run_gate("--baseline", "BENCH_e18.json",
                          "--current", "BENCH_e18.json",
                          "--tolerance", "0.25")
        assert result.returncode == 0
        assert "perf gate: ok" in result.stdout

    def test_missing_baseline_fails_loudly(self):
        result = run_gate("--pair", "BENCH_missing.json:BENCH_e19.json")
        assert result.returncode == 2
        assert "cannot read" in result.stderr
        assert "BENCH_missing.json" in result.stderr

    def test_e19_is_gated_exactly_on_every_field(self, tmp_path):
        record = _record("BENCH_e19.json")
        record["scenarios"][0]["p99_us"] += 0.01
        current = tmp_path / "e19.json"
        current.write_text(json.dumps(record))
        result = run_gate("--pair", f"BENCH_e19.json:{current}")
        assert result.returncode == 1
        assert "deterministic field 'p99_us' changed" in result.stdout
        assert "perf gate: FAIL" in result.stdout

    def test_e20_identical_pair_passes(self):
        result = run_gate("--pair", "BENCH_e20.json:BENCH_e20.json")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "e20 (BENCH_e20.json): ok" in result.stdout

    def test_e20_is_gated_exactly_on_every_field(self, tmp_path):
        record = _record("BENCH_e20.json")
        record["scenarios"][0]["goodput"] += 0.1
        current = tmp_path / "e20.json"
        current.write_text(json.dumps(record))
        result = run_gate("--pair", f"BENCH_e20.json:{current}")
        assert result.returncode == 1
        assert "deterministic field 'goodput' changed" in result.stdout

    def test_e18_throughput_tolerance_band(self, tmp_path):
        record = _record("BENCH_e18.json")
        for row in record["policies"]:
            row["norm_ops"] = round(row["norm_ops"] * 0.8, 1)
        current = tmp_path / "e18.json"
        current.write_text(json.dumps(record))
        # A 20% drop sits inside the 25% band …
        assert run_gate("--pair",
                        f"BENCH_e18.json:{current}:0.25").returncode == 0
        # … and outside a 10% one (per-pair tolerance).
        result = run_gate("--pair", f"BENCH_e18.json:{current}:0.10")
        assert result.returncode == 1
        assert "below baseline" in result.stdout

    def test_one_failing_pair_fails_the_whole_gate(self, tmp_path):
        record = _record("BENCH_e19.json")
        del record["scenarios"][-1]
        current = tmp_path / "e19.json"
        current.write_text(json.dumps(record))
        result = run_gate("--pair", "BENCH_e18.json:BENCH_e18.json",
                          "--pair", f"BENCH_e19.json:{current}")
        assert result.returncode == 1
        assert "rows missing from current run" in result.stdout
        assert "e18 (BENCH_e18.json): ok" in result.stdout

    def test_workload_mismatch_is_reported(self, tmp_path):
        record = _record("BENCH_e19.json")
        record["seed"] += 1
        current = tmp_path / "e19.json"
        current.write_text(json.dumps(record))
        result = run_gate("--pair", f"BENCH_e19.json:{current}")
        assert result.returncode == 1
        assert "workload mismatch" in result.stdout

    def test_nothing_to_gate_is_an_error(self):
        result = run_gate()
        assert result.returncode != 0
        assert "nothing to gate" in result.stderr

    def test_e10_identical_pair_passes(self):
        result = run_gate("--pair", "BENCH_e10.json:BENCH_e10.json")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "e10 (BENCH_e10.json): ok" in result.stdout

    def test_e10_gates_losslessness_and_wire_bytes(self, tmp_path):
        record = _record("BENCH_e10.json")
        wire = next(row for row in record["scenarios"]
                    if row["scenario"].startswith("wire-"))
        wire["nbytes"] += 1
        current = tmp_path / "e10.json"
        current.write_text(json.dumps(record))
        result = run_gate("--pair", f"BENCH_e10.json:{current}")
        assert result.returncode == 1
        assert "deterministic field 'nbytes' changed" in result.stdout

    def test_e10_norm_fast_is_tolerance_banded(self, tmp_path):
        record = _record("BENCH_e10.json")
        for row in record["scenarios"]:
            row["norm_fast"] = round(row["norm_fast"] * 0.5, 1)
        current = tmp_path / "e10.json"
        current.write_text(json.dumps(record))
        assert run_gate("--pair",
                        f"BENCH_e10.json:{current}:0.6").returncode == 0
        result = run_gate("--pair", f"BENCH_e10.json:{current}:0.4")
        assert result.returncode == 1
        assert "below baseline" in result.stdout

    def test_simwall_identical_pair_passes(self):
        result = run_gate(
            "--pair", "BENCH_simwall.json:BENCH_simwall.json")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "simwall (BENCH_simwall.json): ok" in result.stdout

    def test_simwall_gates_the_battery_digest_exactly(self, tmp_path):
        record = _record("BENCH_simwall.json")
        record["scenarios"][0]["digest"] = "0" * 64
        current = tmp_path / "simwall.json"
        current.write_text(json.dumps(record))
        result = run_gate("--pair", f"BENCH_simwall.json:{current}")
        assert result.returncode == 1
        assert "deterministic field 'digest' changed" in result.stdout

    def test_simwall_wall_budget_is_the_norm_rate_floor(self, tmp_path):
        record = _record("BENCH_simwall.json")
        for row in record["scenarios"]:
            row["norm_rate"] = round(row["norm_rate"] * 0.5, 2)
        current = tmp_path / "simwall.json"
        current.write_text(json.dumps(record))
        result = run_gate("--pair", f"BENCH_simwall.json:{current}:0.4")
        assert result.returncode == 1
        assert "below baseline" in result.stdout
