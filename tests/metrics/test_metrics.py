"""Tests for metrics: latency summaries, counters, message windows."""

import pytest

from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.metrics.counters import CounterSet, MessageWindow
from repro.metrics.latency import LatencyRecorder, LatencySummary, percentile


class TestPercentile:
    def test_single_sample(self):
        assert percentile([5.0], 50) == 5.0
        assert percentile([5.0], 99) == 5.0

    def test_median_of_even_list(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_p99_is_near_max(self):
        ordered = sorted(float(i) for i in range(100))
        assert percentile(ordered, 99) == 98.0

    def test_empty(self):
        assert percentile([], 50) == 0.0


class TestLatencySummary:
    def test_of_samples(self):
        summary = LatencySummary.of("s", [1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.total == 6.0

    def test_empty_summary_is_zeroed(self):
        summary = LatencySummary.of("s", [])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_as_row_is_in_milliseconds(self):
        row = LatencySummary.of("s", [0.002]).as_row()
        assert row["mean_ms"] == pytest.approx(2.0)
        assert row["series"] == "s"


class TestLatencyRecorder:
    def test_record_and_summarise(self):
        recorder = LatencyRecorder("ops")
        recorder.record(0.1)
        recorder.extend([0.2, 0.3])
        assert len(recorder) == 3
        assert recorder.summary().mean == pytest.approx(0.2)


class TestCounterSet:
    def test_incr_and_get(self):
        counters = CounterSet()
        counters.incr("a")
        counters.incr("a", 4)
        assert counters.get("a") == 5
        assert counters.get("missing") == 0
        assert counters.as_dict() == {"a": 5}


class TestMessageWindow:
    def test_window_counts_only_inside(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        proxy = get_space(client).bind_ref(ref)
        proxy.get("warm")
        with MessageWindow(system) as window:
            proxy.get("a")
            proxy.get("b")
        assert window.report.messages == 4
        assert window.report.invokes == 2
        assert window.report.bytes > 0
        proxy.get("outside")
        assert window.report.messages == 4

    def test_elapsed_tracks_virtual_time(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        proxy = get_space(client).bind_ref(ref)
        with MessageWindow(system) as window:
            proxy.get("a")
        assert window.report.elapsed > 0

    def test_nested_labels(self, pair):
        system, server, client = pair
        store = KVStore()
        ref = get_space(server).export(store)
        proxy = get_space(client).bind_ref(ref)
        with MessageWindow(system) as window:
            proxy.put("a", 1)
        assert any(label.startswith("req:put")
                   for label in window.report.by_label)
