"""Tests for the system report module."""

import repro
from repro.apps.kv import CachedKVStore, KVStore
from repro.metrics.report import render, report, snapshot


class TestSnapshot:
    def test_contexts_enumerated(self, star):
        system, server, clients = star
        view = snapshot(system)
        ids = {row["context"] for row in view.contexts}
        assert server.context_id in ids
        assert len(ids) == 4

    def test_activity_reflected(self, star):
        system, server, clients = star
        repro.register(server, "kv", KVStore())
        proxy = repro.bind(clients[0], "kv")
        proxy.put("k", 1)
        view = snapshot(system)
        server_row = next(row for row in view.contexts
                          if row["context"] == server.context_id)
        assert server_row["exports"] >= 2   # ctxmgr + nameservice + kv
        assert server_row["requests"] >= 2  # lookup + describe + put
        client_row = next(row for row in view.contexts
                          if row["context"] == clients[0].context_id)
        assert client_row["proxies"] >= 1
        assert view.traffic["messages"] > 0
        assert view.protocol["calls"] > 0

    def test_policies_counted(self, star):
        system, server, clients = star
        repro.register(server, "kv", CachedKVStore())
        repro.bind(clients[0], "kv")
        view = snapshot(system)
        assert view.policies.get("CachingProxy", 0) >= 1

    def test_crash_visible(self, star):
        system, server, clients = star
        clients[0].node.crash()
        view = snapshot(system)
        row = next(row for row in view.contexts
                   if row["context"] == clients[0].context_id)
        assert row["alive"] is False

    def test_migrated_counted(self, star):
        from repro.apps.counter import MigratingCounter
        system, server, clients = star
        repro.register(server, "ctr", MigratingCounter())
        proxy = repro.bind(clients[0], "ctr")
        for _ in range(6):
            proxy.incr()
        view = snapshot(system)
        server_row = next(row for row in view.contexts
                          if row["context"] == server.context_id)
        assert server_row["migrated_away"] == 1


class TestRender:
    def test_render_contains_sections(self, star):
        system, server, clients = star
        repro.register(server, "kv", KVStore())
        repro.bind(clients[0], "kv").get("k")
        text = report(system)
        assert "contexts" in text
        assert "rpc protocol" in text
        assert "traffic" in text
        assert server.context_id in text

    def test_render_of_fresh_system(self):
        system = repro.make_system(seed=1)
        text = render(snapshot(system))
        assert "virtual" in text
