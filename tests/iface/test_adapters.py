"""Unit tests for generated delegate classes."""

from repro.iface.adapters import delegate_class, make_delegate
from repro.iface.conformance import check_implements
from repro.iface.interface import Interface, operation


class Target:
    @operation(readonly=True)
    def get(self, key):
        return f"value-of-{key}"

    @operation(invalidates=("key",))
    def put(self, key, value):
        self.last = (key, value)
        return True


IFACE = Interface.of(Target)


class TestDelegate:
    def test_forwards_calls(self):
        target = Target()
        delegate = make_delegate(target, IFACE)
        assert delegate.get("k") == "value-of-k"
        delegate.put("k", 1)
        assert target.last == ("k", 1)

    def test_structurally_implements_interface(self):
        check_implements(make_delegate(Target(), IFACE), IFACE)

    def test_interface_derivation_matches(self):
        cls = delegate_class(IFACE)
        assert Interface.of(cls) is IFACE

    def test_metadata_preserved(self):
        derived = Interface.of(delegate_class(IFACE))
        assert derived.operation("get").readonly
        assert derived.operation("put").invalidates == ("key",)

    def test_class_is_cached(self):
        assert delegate_class(IFACE) is delegate_class(IFACE)

    def test_distinct_instances_distinct_targets(self):
        a, b = Target(), Target()
        da, db = make_delegate(a, IFACE), make_delegate(b, IFACE)
        da.put("x", 1)
        assert hasattr(a, "last") and not hasattr(b, "last")
        db.put("y", 2)
        assert b.last == ("y", 2)
