"""Unit tests for interface declaration and derivation."""

import pytest

from repro.iface.interface import Interface, Operation, is_operation, operation
from repro.kernel.errors import InterfaceError


class Sample:
    @operation(readonly=True)
    def look(self, key):
        return key

    @operation(invalidates=("key",), compute=1e-5)
    def poke(self, key, value):
        return True

    @operation(oneway=True)
    def notify(self, event):
        pass

    def helper(self):
        """Not part of the interface."""


class TestOperationDecorator:
    def test_marks_methods(self):
        assert is_operation(Sample.look)
        assert not is_operation(Sample.helper)

    def test_bare_decorator(self):
        class Bare:
            @operation
            def op(self):
                return 1
        assert is_operation(Bare.op)

    def test_readonly_implies_idempotent(self):
        iface = Interface.of(Sample)
        assert iface.operation("look").idempotent

    def test_metadata_carried(self):
        iface = Interface.of(Sample)
        poke = iface.operation("poke")
        assert poke.invalidates == ("key",)
        assert poke.compute == 1e-5
        assert not poke.readonly
        assert iface.operation("notify").oneway


class TestInterfaceOf:
    def test_derives_operations_only(self):
        iface = Interface.of(Sample)
        assert iface.names() == ["look", "notify", "poke"]

    def test_params_exclude_self(self):
        iface = Interface.of(Sample)
        assert iface.operation("poke").params == ("key", "value")

    def test_cached_per_class(self):
        assert Interface.of(Sample) is Interface.of(Sample)

    def test_subclass_gets_own_interface(self):
        class Extended(Sample):
            @operation
            def extra(self):
                return 0
        iface = Interface.of(Extended)
        assert "extra" in iface
        assert "look" in iface
        assert Interface.of(Sample).names() == ["look", "notify", "poke"]

    def test_undecorated_class_rejected(self):
        class Nothing:
            def plain(self):
                pass
        with pytest.raises(InterfaceError):
            Interface.of(Nothing)


class TestInterface:
    def test_lookup(self):
        iface = Interface("I", [Operation("a"), Operation("b", ("x",))])
        assert iface.operation("b").params == ("x",)

    def test_unknown_operation_raises_with_candidates(self):
        iface = Interface("I", [Operation("a")])
        with pytest.raises(InterfaceError, match="'a'"):
            iface.operation("zzz")

    def test_contains(self):
        iface = Interface("I", [Operation("a")])
        assert "a" in iface
        assert "b" not in iface

    def test_duplicate_operation_rejected(self):
        with pytest.raises(InterfaceError):
            Interface("I", [Operation("a"), Operation("a")])
