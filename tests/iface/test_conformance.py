"""Unit tests for structural conformance (subtyping)."""

import pytest

from repro.iface.conformance import (
    check_conforms,
    check_implements,
    conformance_gaps,
    conforms,
    operation_compatible,
)
from repro.iface.interface import Interface, Operation, operation
from repro.kernel.errors import ConformanceError

READER = Interface("Reader", [Operation("get", ("key",), readonly=True)])
STORE = Interface("Store", [
    Operation("get", ("key",), readonly=True),
    Operation("put", ("key", "value")),
])


class TestConforms:
    def test_superset_conforms_to_subset(self):
        # Store provides at least Reader's behaviour: Store <: Reader.
        assert conforms(STORE, READER)

    def test_subset_does_not_conform_to_superset(self):
        assert not conforms(READER, STORE)

    def test_conformance_is_reflexive(self):
        assert conforms(STORE, STORE)
        assert conforms(READER, READER)

    def test_arity_mismatch_breaks_conformance(self):
        other = Interface("Other", [Operation("get", ("key", "extra"),
                                              readonly=True)])
        assert not conforms(other, READER)

    def test_readonly_requirement_enforced(self):
        mutating = Interface("Mutating", [Operation("get", ("key",))])
        assert not conforms(mutating, READER)

    def test_gaps_are_descriptive(self):
        gaps = conformance_gaps(READER, STORE)
        assert any("put" in gap for gap in gaps)

    def test_check_conforms_raises(self):
        with pytest.raises(ConformanceError):
            check_conforms(READER, STORE)


class TestOperationCompatible:
    def test_same_is_compatible(self):
        op = Operation("f", ("a",))
        assert operation_compatible(op, op)

    def test_name_mismatch(self):
        assert not operation_compatible(Operation("f"), Operation("g"))

    def test_provided_readonly_satisfies_mutable_requirement(self):
        provided = Operation("f", readonly=True)
        required = Operation("f", readonly=False)
        assert operation_compatible(provided, required)


class TestCheckImplements:
    def test_valid_implementation_passes(self):
        class Impl:
            @operation(readonly=True)
            def get(self, key):
                return key

            @operation
            def put(self, key, value):
                return True
        check_implements(Impl(), STORE)

    def test_missing_method_rejected(self):
        class Partial:
            @operation(readonly=True)
            def get(self, key):
                return key
        with pytest.raises(ConformanceError, match="put"):
            check_implements(Partial(), STORE)

    def test_wrong_arity_rejected(self):
        class Wrong:
            @operation(readonly=True)
            def get(self, key, extra):
                return key

            @operation
            def put(self, key, value):
                return True
        with pytest.raises(ConformanceError, match="parameters"):
            check_implements(Wrong(), STORE)

    def test_unmarked_method_rejected(self):
        class Unmarked:
            def get(self, key):
                return key

            @operation
            def put(self, key, value):
                return True
        with pytest.raises(ConformanceError, match="not marked"):
            check_implements(Unmarked(), STORE)
