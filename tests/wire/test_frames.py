"""Unit tests for message frames."""

import pytest

from repro.kernel.errors import ProtocolError
from repro.wire.frames import (
    EXCEPTION,
    ONEWAY,
    REPLY,
    REQUEST,
    Frame,
    MessageIdMinter,
)
from repro.wire.marshal import PLAIN


class TestFrame:
    def test_request_roundtrip(self):
        frame = Frame(REQUEST, 7, "a/m", "b/m", target="b/m:0", verb="get",
                      body=(("key",), {}), headers={"h": 1})
        back = Frame.decode(frame.encode(PLAIN), PLAIN)
        assert back.kind == REQUEST
        assert back.msg_id == 7
        assert back.src == "a/m"
        assert back.dst == "b/m"
        assert back.target == "b/m:0"
        assert back.verb == "get"
        assert back.body == (("key",), {})
        assert back.headers == {"h": 1}

    def test_reply_to_swaps_endpoints_and_keeps_id(self):
        request = Frame(REQUEST, 3, "a/m", "b/m", verb="op")
        reply = request.reply_to("result")
        assert reply.kind == REPLY
        assert reply.msg_id == 3
        assert reply.src == "b/m"
        assert reply.dst == "a/m"
        assert reply.body == "result"

    def test_exception_to(self):
        request = Frame(REQUEST, 3, "a/m", "b/m", verb="op")
        exc = request.exception_to("KeyError", "nope", detail=(1, 2))
        assert exc.kind == EXCEPTION
        assert exc.body == ("KeyError", "nope", (1, 2))

    def test_oneway_roundtrip(self):
        frame = Frame(ONEWAY, 1, "a/m", "b/m", target="t", verb="notify",
                      body=((), {}))
        assert Frame.decode(frame.encode(PLAIN), PLAIN).kind == ONEWAY

    def test_bad_kind_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            Frame("bogus", 1, "a", "b").encode(PLAIN)

    def test_malformed_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            Frame.decode(PLAIN.encode([1, 2, 3]), PLAIN)

    def test_bad_kind_rejected_on_decode(self):
        data = PLAIN.encode(["nah", 1, "a", "b", "", "", None, {}])
        with pytest.raises(ProtocolError):
            Frame.decode(data, PLAIN)


class TestMessageIdMinter:
    def test_ids_are_unique_and_increasing(self):
        minter = MessageIdMinter()
        ids = [minter.mint() for _ in range(10)]
        assert ids == sorted(set(ids))

    def test_independent_minters(self):
        assert MessageIdMinter().mint() == MessageIdMinter().mint()
