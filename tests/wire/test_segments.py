"""Unit tests for zero-copy wire messages (``repro.wire.segments``).

A :class:`WireMessage` must be indistinguishable from the contiguous
byte stream it stands for: same honest length, same decodable image,
and — because staged messages outlive the caller's tick — stable even
when the caller later mutates a payload it handed in.
"""

from __future__ import annotations

from repro.wire.frames import Frame, ONEWAY
from repro.wire.marshal import Marshaller, RAW_THRESHOLD
from repro.wire.segments import WireMessage


def _bulk_frame(payload):
    return Frame(ONEWAY, 7, "c0/main", "s0/main", target="sink",
                 verb="accept", body=((payload,), {}))


class TestWireMessage:
    def test_len_reports_honest_wire_size(self):
        head = b"head-with-marker"
        msg = WireMessage(head, ((4, b"AAAA"), (9, b"BB")),
                          len(head) + 6)
        assert len(msg) == len(head) + 6

    def test_to_bytes_splices_segments_at_offsets(self):
        # Offsets name the splice point *after* each marker.
        head = b"ab<>cd"
        msg = WireMessage(head, ((2, b"XX"), (4, b"Y")), len(head) + 3)
        assert msg.to_bytes() == b"abXX<>Ycd"

    def test_to_bytes_without_segments_is_the_head(self):
        msg = WireMessage(b"plain", (), 5)
        assert msg.to_bytes() is msg.head

    def test_freeze_is_identity_for_immutable_segments(self):
        msg = WireMessage(b"h", ((1, b"pay"),), 4)
        assert msg.freeze() is msg

    def test_freeze_snapshots_mutable_segments(self):
        owned = bytearray(b"live")
        msg = WireMessage(b"h", ((1, owned),), 5)
        frozen = msg.freeze()
        assert frozen is not msg
        owned[:] = b"DEAD"  # the caller mutates after staging
        assert frozen.to_bytes() == b"hlive"
        assert msg.to_bytes() == b"hDEAD"  # unfrozen view tracks the owner

    def test_freeze_preserves_carried_tuple(self):
        carried = ("one", 7, "a", "b", "t", "v", (), False)
        msg = WireMessage(b"h", ((1, bytearray(b"x")),), 2, carried)
        assert msg.freeze().carried is carried


class TestEncodedMessages:
    def test_bulk_payload_rides_as_uncopied_segment(self):
        blob = b"\x5a" * (RAW_THRESHOLD * 2)
        msg = _bulk_frame(blob).encode_message(Marshaller())
        payloads = [payload for _, payload in msg.segments]
        assert any(payload is blob for payload in payloads)

    def test_nbytes_matches_the_legacy_inline_encoding(self):
        blob = b"\x42" * (RAW_THRESHOLD + 100)
        frame = _bulk_frame(blob)
        assert len(frame.encode_message(Marshaller())) \
            == len(frame.encode(Marshaller()))

    def test_contiguous_image_decodes_with_the_plain_decoder(self):
        blob = bytes(range(256)) * 64  # ≥ threshold, non-trivial content
        frame = _bulk_frame(blob)
        image = frame.encode_message(Marshaller()).to_bytes()
        decoded = Frame.decode(image, Marshaller())
        assert decoded.body == ((blob,), {})
        assert (decoded.kind, decoded.msg_id, decoded.verb) \
            == (frame.kind, frame.msg_id, frame.verb)

    def test_small_payloads_stay_inline(self):
        msg = _bulk_frame(b"tiny").encode_message(Marshaller())
        assert msg.segments == ()
        assert msg.to_bytes() == msg.head

    def test_memoryview_slice_flows_without_copy(self):
        backing = bytes(RAW_THRESHOLD * 3)
        view = memoryview(backing)[RAW_THRESHOLD:RAW_THRESHOLD * 2]
        msg = _bulk_frame(view).encode_message(Marshaller())
        assert any(payload is view for _, payload in msg.segments)
        decoded = Frame.decode_message(msg, Marshaller())
        assert bytes(decoded.body[0][0]) == bytes(view)
