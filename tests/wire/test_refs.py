"""Unit tests for object references and oid minting."""

from repro.wire.refs import ObjectRef, OidMinter


class TestObjectRef:
    def test_node_name(self):
        ref = ObjectRef("nodeA/ctx1", "nodeA/ctx1:0", "I")
        assert ref.node_name == "nodeA"

    def test_key_ignores_location_for_minted_oids(self):
        before = ObjectRef("a/m", "a/m:7", "I", 0)
        after = before.moved_to("b/m")
        assert before.key == after.key

    def test_key_includes_location_for_wellknown_oids(self):
        here = ObjectRef("a/m", "_mover", "MoverService")
        there = ObjectRef("b/m", "_mover", "MoverService")
        assert here.key != there.key

    def test_moved_to_bumps_epoch_and_keeps_policy(self):
        ref = ObjectRef("a/m", "a/m:0", "I", 2, "caching")
        moved = ref.moved_to("b/m")
        assert moved.context_id == "b/m"
        assert moved.epoch == 3
        assert moved.policy == "caching"
        assert moved.oid == ref.oid

    def test_default_policy_is_stub(self):
        assert ObjectRef("a/m", "a/m:0", "I").policy == "stub"

    def test_refs_are_hashable_and_comparable(self):
        a = ObjectRef("a/m", "a/m:0", "I")
        b = ObjectRef("a/m", "a/m:0", "I")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_str_mentions_all_parts(self):
        text = str(ObjectRef("a/m", "a/m:0", "KV", 1, "caching"))
        assert "a/m:0" in text
        assert "KV" in text
        assert "caching" in text


class TestOidMinter:
    def test_oids_unique(self):
        minter = OidMinter("a/m")
        oids = {minter.mint() for _ in range(100)}
        assert len(oids) == 100

    def test_oids_embed_context(self):
        assert OidMinter("nodeX/main").mint().startswith("nodeX/main:")

    def test_minters_in_different_contexts_never_collide(self):
        a = OidMinter("a/m")
        b = OidMinter("b/m")
        assert {a.mint() for _ in range(10)}.isdisjoint(
            {b.mint() for _ in range(10)})
