"""Marshaller memo caches: bounded size, visible counters (satellite of
the raw-speed round).

The string/int/template memos are process-global, so they must be
bounded (FIFO eviction at ``_MEMO_MAX_ENTRIES``) and observable — the
hit/size counters surface through :func:`repro.wire.marshal.memo_stats`
and are re-exported by :mod:`repro.metrics`.
"""

from __future__ import annotations

import pytest

from repro.metrics import marshal_memo_stats, reset_marshal_memo_stats
from repro.wire import marshal
from repro.wire.marshal import (
    Marshaller,
    clear_memos,
    memo_stats,
    reset_memo_stats,
)


@pytest.fixture(autouse=True)
def _fresh_memos():
    """Cold caches and zeroed counters around every test here."""
    clear_memos()
    reset_memo_stats()
    yield
    clear_memos()
    reset_memo_stats()


def test_string_memo_counts_misses_then_hits():
    plain = Marshaller()
    plain.encode("motd")
    first = memo_stats()
    assert first["str_enc_misses"] == 1
    assert first["str_enc_hits"] == 0
    plain.encode("motd")
    second = memo_stats()
    assert second["str_enc_hits"] == 1
    assert second["str_enc_size"] == 1


def test_decode_memo_counts_separately():
    plain = Marshaller()
    image = plain.encode("payload-key")
    plain.decode(image)
    plain.decode(image)
    stats = memo_stats()
    assert stats["str_dec_misses"] == 1
    assert stats["str_dec_hits"] == 1


def test_memos_stay_bounded_under_churn():
    cap = marshal._MEMO_MAX_ENTRIES
    plain = Marshaller()
    for i in range(cap + 500):
        plain.encode(f"churn-key-{i}")
    stats = memo_stats()
    assert stats["str_enc_size"] <= cap
    assert stats["evictions"] >= 500
    assert stats["max_entries"] == cap


def test_eviction_is_fifo_oldest_first():
    cap = marshal._MEMO_MAX_ENTRIES
    plain = Marshaller()
    plain.encode("the-first-key")
    for i in range(cap):  # push exactly past capacity
        plain.encode(f"filler-{i}")
    assert "the-first-key" not in marshal._STR_ENC
    assert f"filler-{cap - 1}" in marshal._STR_ENC


def test_template_memo_bounded_and_counted():
    from repro.wire.frames import Frame, ONEWAY

    plain = Marshaller()
    cap = marshal._MEMO_MAX_ENTRIES
    for i in range(cap + 10):
        frame = Frame(ONEWAY, 1, "c0/main", "s0/main", target=f"t{i}",
                      verb="poke", body=((), {}))
        frame.encode_message(plain)
    stats = memo_stats()
    assert stats["tmpl_size"] <= cap
    assert stats["tmpl_misses"] >= cap + 10
    # A repeat of the *last* frame hits the surviving template.
    frame.encode_message(plain)
    assert memo_stats()["tmpl_hits"] >= 1


def test_reset_zeroes_counters_but_keeps_entries():
    plain = Marshaller()
    plain.encode("sticky")
    reset_memo_stats()
    stats = memo_stats()
    assert stats["str_enc_misses"] == 0
    assert stats["str_enc_size"] == 1  # the cache itself survives


def test_clear_empties_every_memo():
    plain = Marshaller()
    plain.encode("gone")
    plain.decode(plain.encode("gone-too"))
    clear_memos()
    stats = memo_stats()
    assert stats["str_enc_size"] == 0
    assert stats["str_dec_size"] == 0
    assert stats["int_enc_size"] == 0
    assert stats["tmpl_size"] == 0


def test_metrics_reexport_is_the_same_snapshot():
    plain = Marshaller()
    plain.encode("via-metrics")
    assert marshal_memo_stats() == memo_stats()
    reset_marshal_memo_stats()
    assert memo_stats()["str_enc_misses"] == 0


def test_reading_stats_never_warms_the_caches():
    before = memo_stats()
    after = memo_stats()
    assert before == after
    assert after["str_enc_size"] == 0
