"""Byte-identity fuzz: the fast-path encoder vs the naive reference encoder.

The Marshaller's hot path (exact-type dispatch table, inlined container
loops, encode/decode memos, the 8-field frame codec) is an *optimisation*,
not a format change: its output must be byte-for-byte what the original
naive encoder produced.  This test keeps that naive encoder alive — a
hook-first ``isinstance`` chain, transcribed from the pre-fast-path
implementation — and fuzzes both over the full supported type space, with
and without swizzle hooks.

The one deliberate semantic refinement is hook exemption: the fast path
never consults the encoder hook for values of an exact built-in type,
because the object-space hook declines plain data by definition.  The fuzz
therefore uses hooks with that shape (swizzle a marker class, decline
everything else), which is the only shape the system installs.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.wire.marshal import PLAIN, Marshaller
from repro.wire.refs import ObjectRef

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")


class Exportable:
    """Stands in for an object-space export: hooks swizzle it to a ref."""

    def __init__(self, oid: str):
        self.oid = oid


def _object_space_hook(value):
    """The realistic hook shape: swizzle exports, decline plain data."""
    if isinstance(value, Exportable):
        return ObjectRef("n0/main", value.oid, "IThing", 0, "stub")
    return None


def naive_encode(value, hook=None) -> bytes:
    """The reference encoder: hook first, then the isinstance chain.

    A transcription of the original (pre-fast-path) ``_encode_into``; kept
    here so the wire format has an executable specification independent of
    the optimised implementation.
    """
    out = bytearray()
    _naive_into(value, out, hook)
    return bytes(out)


def _naive_into(value, out: bytearray, hook) -> None:
    if hook is not None:
        replacement = hook(value)
        if replacement is not None and replacement is not value:
            value = replacement
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        if -(2**63) <= value < 2**63:
            out += b"i" + _I64.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8 + 1,
                                 "big", signed=True)
            out += b"I" + _U32.pack(len(raw)) + raw
    elif isinstance(value, float):
        out += b"f" + _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s" + _U32.pack(len(raw)) + raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out += b"b" + _U32.pack(len(raw)) + raw
    elif isinstance(value, ObjectRef):
        out += b"R"
        for field in (value.context_id, value.oid, value.interface,
                      value.policy):
            raw = field.encode("utf-8")
            out += _U32.pack(len(raw)) + raw
        out += _I64.pack(value.epoch)
    elif isinstance(value, list):
        out += b"l" + _U32.pack(len(value))
        for item in value:
            _naive_into(item, out, hook)
    elif isinstance(value, tuple):
        out += b"t" + _U32.pack(len(value))
        for item in value:
            _naive_into(item, out, hook)
    elif isinstance(value, dict):
        out += b"d" + _U32.pack(len(value))
        for key, val in value.items():
            _naive_into(key, out, hook)
            _naive_into(val, out, hook)
    elif isinstance(value, frozenset):
        out += b"Z" + _U32.pack(len(value))
        for item in sorted(value, key=repr):
            _naive_into(item, out, hook)
    elif isinstance(value, set):
        out += b"S" + _U32.pack(len(value))
        for item in sorted(value, key=repr):
            _naive_into(item, out, hook)
    else:
        raise AssertionError(f"naive encoder got {type(value).__name__}")


# -- fuzz value generator ------------------------------------------------------

_WORDS = ("get", "put", "kv", "n0/main", "k0", "", "motd",
          "über-schlüssel", "x" * 63, "y" * 64, "z" * 200)


def _scalar(rng: random.Random):
    pick = rng.randrange(9)
    if pick == 0:
        return None
    if pick == 1:
        return rng.random() < 0.5
    if pick == 2:
        return rng.randrange(-100, 100)
    if pick == 3:  # i64 boundary and bigint territory
        return rng.choice((2**63 - 1, -(2**63), 2**63, -(2**63) - 1,
                           2**200 + rng.randrange(1000)))
    if pick == 4:
        return rng.choice((0.0, -0.0, 1.5, -2.25e300, 1e-300,
                           float("inf"), float("-inf")))
    if pick == 5:
        return rng.choice(_WORDS)
    if pick == 6:
        return bytes(rng.randrange(256) for _ in range(rng.randrange(8)))
    if pick == 7:
        return ObjectRef(f"n{rng.randrange(3)}/main", f"oid{rng.randrange(9)}",
                         "IThing", rng.randrange(4), "caching")
    return rng.randrange(-100, 100)


def _value(rng: random.Random, depth: int, with_exports: bool):
    if depth <= 0 or rng.random() < 0.5:
        if with_exports and rng.random() < 0.15:
            return Exportable(f"oid{rng.randrange(9)}")
        return _scalar(rng)
    pick = rng.randrange(5)
    size = rng.randrange(4)
    if pick == 0:
        return [_value(rng, depth - 1, with_exports) for _ in range(size)]
    if pick == 1:
        return tuple(_value(rng, depth - 1, with_exports)
                     for _ in range(size))
    if pick == 2:
        return {rng.choice(_WORDS) if rng.random() < 0.8
                else rng.randrange(100): _value(rng, depth - 1, with_exports)
                for _ in range(size)}
    # Set elements must be hashable: scalars only.
    items = [_scalar(rng) for _ in range(size)]
    return (set(items) if pick == 3 else frozenset(items))


def test_fuzz_byte_identity_hook_free():
    rng = random.Random(0xE18)
    fast = Marshaller()
    for _ in range(400):
        value = _value(rng, depth=3, with_exports=False)
        assert fast.encode(value) == naive_encode(value)


def test_fuzz_byte_identity_with_swizzle_hook():
    rng = random.Random(0xE18 + 1)
    fast = Marshaller(encoder_hook=_object_space_hook)
    for _ in range(400):
        value = _value(rng, depth=3, with_exports=True)
        assert fast.encode(value) == naive_encode(value,
                                                  hook=_object_space_hook)


def test_fuzz_round_trip():
    rng = random.Random(0xE18 + 2)
    for _ in range(400):
        value = _value(rng, depth=3, with_exports=False)
        assert PLAIN.decode(PLAIN.encode(value)) == value


def test_long_strings_bypass_memo_but_stay_identical():
    # 64 chars is the memo ceiling; 65+ must take the uncached path and
    # still produce the same bytes (and round-trip).
    for text in ("a" * 64, "b" * 65, "ü" * 64, "c" * 5000):
        assert PLAIN.encode(text) == naive_encode(text)
        assert PLAIN.decode(PLAIN.encode(text)) == text


def test_subclasses_fall_through_to_hooks():
    # An int subclass is NOT hook-exempt: the fast table claims exact types
    # only, so the hook still sees it and may swizzle it.
    class TaggedInt(int):
        pass

    def hook(value):
        if type(value) is TaggedInt:
            return ObjectRef("n0/main", "swizzled", "IThing", 0, "stub")
        return None

    fast = Marshaller(encoder_hook=hook)
    assert fast.encode(TaggedInt(7)) == naive_encode(
        ObjectRef("n0/main", "swizzled", "IThing", 0, "stub"))
    # Inside a container too.
    assert fast.encode([TaggedInt(7)]) == naive_encode(
        [ObjectRef("n0/main", "swizzled", "IThing", 0, "stub")])
    # And a plain int is untouched even with the hook installed.
    assert fast.encode(7) == naive_encode(7)


def test_frame_codec_matches_generic_encoding():
    fields = ["req", 41, "n0/main", "n1/kv", "oid7", "get",
              ["k0", 12, None, {"nested": True}], {}]
    fast = PLAIN.encode_frame_fields(*fields)
    assert fast == naive_encode(fields)
    assert PLAIN.decode_frame_fields(fast) == fields
    # Non-empty headers take the generic path but stay identical.
    fields[7] = {"hop": 3}
    fast = PLAIN.encode_frame_fields(*fields)
    assert fast == naive_encode(fields)
    assert PLAIN.decode_frame_fields(fast) == fields


def test_frame_decoder_rejects_non_frames_and_garbage():
    from repro.kernel.errors import MarshalError

    # Not an 8-element list: decliner returns None (caller falls back).
    assert PLAIN.decode_frame_fields(PLAIN.encode([1, 2, 3])) is None
    assert PLAIN.decode_frame_fields(PLAIN.encode("req")) is None
    good = PLAIN.encode_frame_fields("req", 1, "a", "b", "t", "v", None, {})
    with pytest.raises(MarshalError):
        PLAIN.decode_frame_fields(good[:-3])
    with pytest.raises(MarshalError):
        PLAIN.decode_frame_fields(good + b"x")
