"""Unit and property tests for the wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.errors import MarshalError
from repro.wire.marshal import PLAIN, Marshaller, wire_size
from repro.wire.refs import ObjectRef


def roundtrip(value):
    return PLAIN.decode(PLAIN.encode(value))


class TestScalars:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 2**62, -(2**62), 2**100, -(2**100),
        0.0, 1.5, -2.25, 1e300, "", "hello", "unicode: æøå 中文 🎉",
        b"", b"raw bytes \x00\xff",
    ])
    def test_roundtrip(self, value):
        assert roundtrip(value) == value

    def test_bool_is_not_int(self):
        assert roundtrip(True) is True
        assert roundtrip(1) == 1
        assert roundtrip(1) is not True

    def test_bytearray_becomes_bytes(self):
        assert roundtrip(bytearray(b"ab")) == b"ab"


class TestContainers:
    @pytest.mark.parametrize("value", [
        [], [1, 2, 3], [1, "two", 3.0, None, b"x"],
        (), (1, (2, (3,))),
        {}, {"a": 1, "b": [2, 3]}, {1: "x", (1, 2): "y"},
        set(), {1, 2, 3}, frozenset({1, 2}),
        [{"deep": [(1, {"er": {4}})]}],
    ])
    def test_roundtrip(self, value):
        assert roundtrip(value) == value

    def test_tuple_list_distinction_preserved(self):
        assert isinstance(roundtrip((1, 2)), tuple)
        assert isinstance(roundtrip([1, 2]), list)

    def test_set_frozenset_distinction_preserved(self):
        assert isinstance(roundtrip({1}), set)
        assert isinstance(roundtrip(frozenset({1})), frozenset)


class TestRefs:
    def test_ref_roundtrip(self):
        ref = ObjectRef("node/ctx", "node/ctx:5", "KVStore", 3, "caching")
        assert roundtrip(ref) == ref

    def test_ref_inside_containers(self):
        ref = ObjectRef("a/b", "a/b:0", "I", 0, "stub")
        value = {"refs": [ref, ref], "n": 1}
        assert roundtrip(value) == value


class TestErrors:
    def test_unmarshallable_object_rejected(self):
        class Arbitrary:
            pass
        with pytest.raises(MarshalError):
            PLAIN.encode(Arbitrary())

    def test_truncated_data_rejected(self):
        data = PLAIN.encode("hello world")
        with pytest.raises(MarshalError):
            PLAIN.decode(data[:-3])

    def test_trailing_garbage_rejected(self):
        data = PLAIN.encode(42)
        with pytest.raises(MarshalError):
            PLAIN.decode(data + b"x")

    def test_unknown_tag_rejected(self):
        with pytest.raises(MarshalError):
            PLAIN.decode(b"\x99")

    def test_empty_input_rejected(self):
        with pytest.raises(MarshalError):
            PLAIN.decode(b"")


class TestHooks:
    def test_encoder_hook_replaces(self):
        class Marker:
            pass
        enc = Marshaller(encoder_hook=lambda v:
                         "REPLACED" if isinstance(v, Marker) else None)
        assert PLAIN.decode(enc.encode([Marker(), 1])) == ["REPLACED", 1]

    def test_decoder_hook_sees_refs(self):
        seen = []
        ref = ObjectRef("a/b", "a/b:0", "I")
        dec = Marshaller(decoder_hook=lambda r: seen.append(r) or "proxy!")
        assert dec.decode(PLAIN.encode([ref])) == ["proxy!"]
        assert seen == [ref]

    def test_hooks_do_not_touch_plain_values(self):
        enc = Marshaller(encoder_hook=lambda v: None)
        assert PLAIN.decode(enc.encode({"a": [1, 2]})) == {"a": [1, 2]}


class TestWireSize:
    def test_size_matches_encoding(self):
        value = {"key": "x" * 100}
        assert wire_size(value) == len(PLAIN.encode(value))

    def test_bigger_payload_bigger_size(self):
        assert wire_size("x" * 1000) > wire_size("x" * 10)


# -- property-based round-trip ------------------------------------------------

wire_values = st.recursive(
    st.none() | st.booleans() | st.integers() |
    st.floats(allow_nan=False) | st.text(max_size=40) |
    st.binary(max_size=40),
    lambda children: st.lists(children, max_size=5)
    | st.tuples(children, children)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=25,
)


@settings(max_examples=200, deadline=None)
@given(wire_values)
def test_roundtrip_property(value):
    assert roundtrip(value) == value


@settings(max_examples=100, deadline=None)
@given(wire_values)
def test_encoding_is_deterministic(value):
    assert PLAIN.encode(value) == PLAIN.encode(value)


@settings(max_examples=100, deadline=None)
@given(st.integers())
def test_any_integer_roundtrips(value):
    assert roundtrip(value) == value
