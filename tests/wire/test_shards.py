"""Unit tests for the shard ring wire protocol (hashing, arcs, fencing)."""

import pytest

from repro.kernel.errors import ConfigurationError, ProtocolError
from repro.wire import shards


class FakeStore:
    """A minimal keyed object with the shard transfer hooks."""

    def __init__(self, data=None):
        self.data = dict(data or {})

    def get(self, key):
        return self.data.get(key)

    def put(self, key, value):
        self.data[key] = value
        return True

    def shard_keys(self):
        return list(self.data)

    def shard_fragment(self, keys):
        return {key: self.data[key] for key in keys if key in self.data}

    def shard_absorb(self, fragment):
        self.data.update(fragment)

    def shard_discard(self, keys):
        for key in keys:
            self.data.pop(key, None)


class FakeEntry:
    """An export-table entry stand-in (obj + shard state + hook log)."""

    def __init__(self, obj, sharding=None):
        self.obj = obj
        self.sharding = sharding
        self.mutations = []

    def run_mutation_hooks(self, verb, args, kwargs):
        self.mutations.append((verb, args, kwargs))


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert shards.stable_hash("k1") == shards.stable_hash("k1")

    def test_64_bit_range(self):
        for key in ("a", "b", 7, ("t", 1)):
            assert 0 <= shards.stable_hash(key) < 2 ** 64

    def test_distinct_keys_hash_apart(self):
        hashes = {shards.stable_hash(f"k{i}") for i in range(100)}
        assert len(hashes) == 100


class TestRings:
    def test_default_ring_is_sorted_and_sized(self):
        ring = shards.default_ring(4, vnodes=8)
        assert len(ring) == 32
        points = [point for point, _owner in ring]
        assert points == sorted(points)

    def test_default_ring_is_deterministic(self):
        assert shards.default_ring(4) == shards.default_ring(4)

    def test_default_ring_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            shards.default_ring(0)
        with pytest.raises(ConfigurationError):
            shards.default_ring(2, vnodes=0)

    def test_validate_rejects_empty_ring(self):
        with pytest.raises(ConfigurationError, match="empty"):
            shards.validate_ring([], 1)

    def test_validate_rejects_duplicate_points(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            shards.validate_ring([[10, 0], [10, 1]], 2)

    def test_validate_rejects_out_of_range_owner(self):
        with pytest.raises(ConfigurationError, match="outside"):
            shards.validate_ring([[10, 0], [20, 2]], 2)

    def test_validate_normalises_to_sorted_lists(self):
        assert shards.validate_ring([(20, 1), (10, 0)], 2) == \
            [[10, 0], [20, 1]]

    def test_every_shard_owns_some_keys(self):
        # Distribution balance: with 8 vnodes per shard, 5000 uniform keys
        # land on every shard and no shard hoards the ring (the exact
        # shares are deterministic; the bound is deliberately loose).
        state = shards.ShardState(-1, 1, shards.default_ring(8), [[]] * 8)
        counts = [0] * 8
        for i in range(5000):
            counts[state.owner_of(shards.stable_hash(f"key:{i}"))] += 1
        assert min(counts) > 0
        assert max(counts) < 3 * (5000 / 8)


class TestInArc:
    def test_single_point_owns_whole_circle(self):
        assert shards.in_arc(123, 50, 50)
        assert shards.in_arc(50, 50, 50)

    def test_plain_arc_is_half_open(self):
        assert not shards.in_arc(10, 10, 20)
        assert shards.in_arc(11, 10, 20)
        assert shards.in_arc(20, 10, 20)
        assert not shards.in_arc(21, 10, 20)

    def test_wrapping_arc_through_the_top(self):
        assert shards.in_arc(2 ** 63, 2 ** 62, 5)
        assert shards.in_arc(5, 2 ** 62, 5)
        assert not shards.in_arc(6, 2 ** 62, 5)
        assert not shards.in_arc(2 ** 62, 2 ** 62, 5)


class TestShardState:
    def _state(self):
        return shards.ShardState(
            0, 1, [[100, 0], [200, 1], [300, 0]], [["c0"], ["c1"]])

    def test_owner_of_bisects(self):
        state = self._state()
        assert state.owner_of(150) == 1    # (100, 200] -> shard 1
        assert state.owner_of(200) == 1
        assert state.owner_of(250) == 0    # (200, 300] -> shard 0

    def test_owner_of_wraps_past_the_top(self):
        state = self._state()
        assert state.owner_of(301) == 0    # wraps to the first point
        assert state.owner_of(50) == 0

    def test_arc_of_first_point_wraps(self):
        state = self._state()
        assert state.arc_of(0) == (300, 100)
        assert state.arc_of(1) == (100, 200)

    def test_map_round_trips(self):
        state = self._state()
        clone = shards.ShardState(-1, *state.map())
        assert clone.map() == state.map()
        assert clone.owner_of(150) == state.owner_of(150)

    def test_adopt_requires_strictly_newer_epoch(self):
        state = self._state()
        same = state.map()
        assert not state.adopt(*same)
        older = [0, same[1], same[2]]
        assert not state.adopt(*older)
        newer = [2, [[100, 1], [200, 1], [300, 0]], same[2]]
        assert state.adopt(*newer)
        assert state.epoch == 2
        assert state.owner_of(50) == 1    # reindexed


class TestServeVerb:
    def _entry(self, epoch=3):
        ring = [[100, 0], [200, 1]]
        state = shards.ShardState(0, epoch, ring, [["c0"], ["c1"]])
        return FakeEntry(FakeStore({"k": "v"}), state), state

    def test_current_epoch_served_without_heal(self):
        entry, _state = self._entry()
        reply = shards.serve_verb(entry, "get", ("k",), {},
                                  {shards.H_EPOCH: [3]}, readonly=True)
        assert reply == {shards.K_VALUE: "v"}

    def test_stale_epoch_with_owned_key_served_and_healed(self):
        entry, state = self._entry()
        owned = 250    # wraps onto point 100 -> shard 0 (this entry)
        assert state.owner_of(owned) == 0
        reply = shards.serve_verb(entry, "get", ("k",), {},
                                  {shards.H_EPOCH: [1],
                                   shards.H_KEY: owned},
                                  readonly=True)
        assert reply[shards.K_VALUE] == "v"
        assert reply[shards.K_MAP] == state.map()

    def test_stale_epoch_with_moved_key_fenced(self):
        entry, state = self._entry()
        moved = 150    # (100, 200] -> shard 1, not this entry
        assert state.owner_of(moved) == 1
        reply = shards.serve_verb(entry, "get", ("k",), {},
                                  {shards.H_EPOCH: [1],
                                   shards.H_KEY: moved})
        assert reply == {shards.K_FENCED: state.map()}

    def test_stale_epoch_without_key_hash_fenced(self):
        entry, state = self._entry()
        reply = shards.serve_verb(entry, "get", ("k",), {},
                                  {shards.H_EPOCH: [1]})
        assert reply == {shards.K_FENCED: state.map()}

    def test_mutation_hooks_fire_only_for_writes(self):
        entry, _state = self._entry()
        shards.serve_verb(entry, "put", ("k", "w"), {},
                          {shards.H_EPOCH: [3]})
        shards.serve_verb(entry, "get", ("k",), {},
                          {shards.H_EPOCH: [3]}, readonly=True)
        assert entry.mutations == [("put", ("k", "w"), {})]


class TestServeControl:
    def test_map_control_returns_the_map(self):
        entry, state = TestServeVerb()._entry()
        reply = shards.serve_control(entry, ["map"], ())
        assert reply == {shards.K_MAP: state.map()}

    def test_map_control_on_unsharded_entry_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            shards.serve_control(FakeEntry(FakeStore()), ["map"], ())

    def test_commit_adopts_strictly_newer_maps_only(self):
        entry, state = TestServeVerb()._entry(epoch=3)
        newer = [5, state.ring, state.shards]
        shards.serve_control(entry, ["commit"], (newer,))
        assert state.epoch == 5
        shards.serve_control(entry, ["commit"], ([4, state.ring,
                                                  state.shards],))
        assert state.epoch == 5

    def test_install_is_discard_first_and_idempotent(self):
        entry = FakeEntry(FakeStore({"a": "old", "b": "keep"}))
        reply = shards.serve_control(entry, ["install", ["a"]],
                                     ({"a": "new"},))
        assert reply == {shards.K_VALUE: True}
        assert entry.obj.data == {"a": "new", "b": "keep"}
        shards.serve_control(entry, ["install", ["a"]], ({"a": "new"},))
        assert entry.obj.data == {"a": "new", "b": "keep"}

    def test_unknown_control_is_a_protocol_error(self):
        entry, _state = TestServeVerb()._entry()
        with pytest.raises(ProtocolError, match="unknown shard control"):
            shards.serve_control(entry, ["gossip"], ())
