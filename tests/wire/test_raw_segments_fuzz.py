"""Hypothesis round-trip fuzz: raw-segment framing and multi-reply frames.

The naive reference encoder (``test_marshal_fastpath.naive_encode``) is
the executable wire specification.  The zero-copy message path must
relate to it exactly as designed:

* payload bytes **below** ``RAW_THRESHOLD`` — the message's contiguous
  image is byte-identical to the reference encoding;
* payload bytes **at or above** the threshold — the image differs only
  by the raw markers (same total length, still decodable by the plain
  decoder, lossless round-trip through both decode paths);
* swizzle hooks keep falling through: exact-built-in payloads are hook
  exempt on both paths, marker classes swizzle identically on both.

Multi-reply (``mrp``) frames are plain frames whose body is a tuple of
``(wire_image, arrive)`` pairs; they must round-trip through both codecs
and match the reference encoder byte for byte on the legacy path.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.transport import Transport
from repro.wire.frames import Frame, MREPLY, ONEWAY, REQUEST
from repro.wire.marshal import Marshaller, RAW_THRESHOLD

from test_marshal_fastpath import (
    Exportable,
    _object_space_hook,
    naive_encode,
)

# Sizes straddling the raw threshold, including both fence posts.
_SMALL = st.integers(min_value=0, max_value=64)
_NEAR = st.integers(min_value=RAW_THRESHOLD - 2, max_value=RAW_THRESHOLD + 2)
_BULK = st.integers(min_value=RAW_THRESHOLD, max_value=RAW_THRESHOLD * 4)
_ANY_SIZE = st.one_of(_SMALL, _NEAR, _BULK)

_payload_bytes = _ANY_SIZE.flatmap(
    lambda n: st.binary(min_size=n, max_size=n))

_scalar = st.one_of(
    st.none(), st.booleans(), st.integers(-2**63, 2**63 - 1),
    st.floats(allow_nan=False), st.text(max_size=12), _payload_bytes)

_body_value = st.recursive(
    _scalar,
    lambda leaf: st.one_of(
        st.lists(leaf, max_size=3),
        st.tuples(leaf, leaf),
        st.dictionaries(st.text(max_size=6), leaf, max_size=3)),
    max_leaves=8)


def _fields(frame: Frame) -> list:
    return [frame.kind, frame.msg_id, frame.src, frame.dst,
            frame.target, frame.verb, frame.body, frame.headers]


def _image(msg) -> bytes:
    """Contiguous wire image of an ``encode_message`` result — which is
    plain bytes already whenever the fast path had nothing to add."""
    return msg if msg.__class__ is bytes else msg.to_bytes()


def _segments(msg) -> tuple:
    return () if msg.__class__ is bytes else msg.segments


def _has_bulk(value) -> bool:
    if value.__class__ in (bytes, bytearray):
        return len(value) >= RAW_THRESHOLD
    if value.__class__ in (list, tuple, set, frozenset):
        return any(_has_bulk(item) for item in value)
    if value.__class__ is dict:
        return any(_has_bulk(v) for v in value.values())
    return False


@settings(max_examples=150, deadline=None)
@given(args=st.lists(_body_value, max_size=3), msg_id=st.integers(0, 2**31))
def test_message_path_vs_reference_encoder(args, msg_id):
    frame = Frame(REQUEST, msg_id, "c0/main", "s0/main", target="svc",
                  verb="op", body=(tuple(args), {}))
    reference = naive_encode(_fields(frame))
    msg = frame.encode_message(Marshaller())
    image = _image(msg)
    # The honest length always matches the reference encoding.
    assert len(msg) == len(reference)
    assert len(image) == len(reference)
    if not _has_bulk(frame.body):
        # No raw markers in play: byte identity, not just equivalence.
        assert image == reference
    # Lossless through the segment-aware decoder…
    direct = Frame.decode_message(msg, Marshaller())
    assert direct.body == frame.body
    assert _fields(direct)[:6] == _fields(frame)[:6]
    # …and through the plain byte-stream decoder on the spliced image.
    spliced = Frame.decode(image, Marshaller())
    assert spliced.body == frame.body


@settings(max_examples=60, deadline=None)
@given(size=st.one_of(_NEAR, _BULK), oid=st.integers(0, 8))
def test_hook_fall_through_straddles_the_threshold(size, oid):
    # A swizzled export next to a bulk payload: the hook must fire for
    # the marker class and stay exempt for the exact-bytes payload on
    # both the reference and the zero-copy path.
    blob = b"\xa5" * size
    body = ((blob, Exportable(f"oid{oid}")), {})
    frame = Frame(ONEWAY, 5, "c0/main", "s0/main", target="svc",
                  verb="op", body=body)
    hooked = Marshaller(encoder_hook=_object_space_hook)
    swizzled = ((blob, _object_space_hook(Exportable(f"oid{oid}"))), {})
    reference = naive_encode(
        [frame.kind, frame.msg_id, frame.src, frame.dst, frame.target,
         frame.verb, swizzled, {}])
    msg = frame.encode_message(hooked)
    assert len(msg) == len(reference)
    decoded = Frame.decode_message(msg, Marshaller())
    assert decoded.body == swizzled
    if size >= RAW_THRESHOLD:
        assert any(payload is blob for _, payload in _segments(msg))
    else:
        assert _image(msg) == reference


@settings(max_examples=80, deadline=None)
@given(subs=st.lists(
    st.tuples(st.binary(max_size=200),
              st.floats(min_value=0, max_value=1e6, allow_nan=False)),
    min_size=1, max_size=5))
def test_multi_reply_frames_round_trip(subs):
    subs = tuple(subs)
    frame = Frame(MREPLY, 0, "s0/main", "c0", body=subs)
    legacy = frame.encode(Marshaller())
    assert legacy == naive_encode(_fields(frame))
    back = Frame.decode(legacy, Marshaller())
    assert back.kind == MREPLY
    assert Transport.unbatch(back) == subs
    # The message path agrees with itself and with the legacy length.
    msg = frame.encode_message(Marshaller())
    assert len(msg) == len(legacy)
    again = Frame.decode_message(msg, Marshaller())
    assert Transport.unbatch(again) == subs


@settings(max_examples=40, deadline=None)
@given(inner_size=st.one_of(_SMALL, _BULK),
       arrive=st.floats(min_value=0, max_value=100, allow_nan=False))
def test_multi_reply_carrying_bulk_sub_images(inner_size, arrive):
    # A batched sub-frame that itself used the zero-copy path: its
    # contiguous image (raw markers inline) must survive the batch
    # round-trip untouched, so the receiver replays the exact bytes.
    inner = Frame(ONEWAY, 3, "s0/main", "c0/main", target="cb",
                  verb="notify", body=((b"\x7e" * inner_size,), {}))
    image = _image(inner.encode_message(Marshaller()))
    batch = Frame(MREPLY, 0, "s0/main", "c0", body=((image, arrive),))
    back = Frame.decode(batch.encode(Marshaller()), Marshaller())
    (carried_image, carried_arrive), = Transport.unbatch(back)
    assert carried_image == image
    assert carried_arrive == arrive
    replayed = Frame.decode(carried_image, Marshaller())
    assert replayed.body == inner.body
