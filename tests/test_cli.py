"""Tests for the command-line interface."""


from repro.cli import main


class TestCli:
    def test_list_names_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for short in ("e1", "e5", "e12"):
            assert f"{short} " in out or f"{short}  " in out

    def test_run_prints_table(self, capsys):
        assert main(["run", "e6"]) == 0
        out = capsys.readouterr().out
        assert "bind via name service" in out

    def test_run_with_seed_and_ops(self, capsys):
        assert main(["run", "e12", "--seed", "3", "--ops", "8"]) == 0
        assert "unbounded" in capsys.readouterr().out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_ops_ignored_when_unsupported(self, capsys):
        assert main(["run", "e3", "--ops", "5"]) == 0
        assert "ignored" in capsys.readouterr().err

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "principle audit: clean" in capsys.readouterr().out

    def test_run_is_deterministic(self, capsys):
        main(["run", "e6"])
        first = capsys.readouterr().out
        main(["run", "e6"])
        assert capsys.readouterr().out == first

    def test_run_json_emits_sorted_machine_readable_rows(self, capsys):
        import json
        assert main(["run", "e6", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list) and rows
        assert all(isinstance(row, dict) for row in rows)

    def test_run_json_is_deterministic_under_one_seed(self, capsys):
        main(["run", "e6", "--seed", "5", "--json"])
        first = capsys.readouterr().out
        main(["run", "e6", "--seed", "5", "--json"])
        assert capsys.readouterr().out == first, \
            "the determinism CI gate diffs exactly this output"

    def test_bench_prints_table_and_calibration(self, capsys):
        assert main(["bench", "e18", "--ops", "60"]) == 0
        out = capsys.readouterr().out
        assert "invocation fast path" in out
        assert "calibration" in out

    def test_bench_json_has_perf_gate_fields(self, capsys):
        import json
        assert main(["bench", "e18", "--ops", "60", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "e18"
        assert payload["calibration_rate"] > 0
        for row in payload["policies"]:
            for field in ("policy", "ops_per_sec", "norm_ops",
                          "sim_us_per_op", "messages", "fingerprint"):
                assert field in row

    def test_bench_e19_table_is_deterministic(self, capsys):
        assert main(["bench", "e19", "--ops", "640"]) == 0
        first = capsys.readouterr().out
        assert "consistent-hash sharding" in first
        assert "8+split" in first
        assert main(["bench", "e19", "--ops", "640"]) == 0
        assert capsys.readouterr().out == first, \
            "e19 is virtual-only; its table must be byte-stable"

    def test_bench_e19_json_has_perf_gate_fields(self, capsys):
        import json
        assert main(["bench", "e19", "--ops", "640", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "e19"
        for row in payload["scenarios"]:
            for field in ("scenario", "shards", "virtual_kops",
                          "second_half_kops", "messages", "fingerprint"):
                assert field in row

    def test_bench_e19_rejects_too_few_ops(self):
        from repro.kernel.errors import ConfigurationError
        import pytest
        with pytest.raises(ConfigurationError):
            main(["bench", "e19", "--ops", "60"])

    def test_bench_e20_json_is_deterministic(self, capsys):
        import json
        assert main(["bench", "e20", "--ops", "256", "--json"]) == 0
        first = capsys.readouterr().out
        payload = json.loads(first)
        assert payload["experiment"] == "e20"
        for row in payload["scenarios"]:
            for field in ("scenario", "stack", "load_x", "goodput",
                          "p99_ms", "shed_queue", "shed_throttle",
                          "messages", "fingerprint"):
                assert field in row
        assert main(["bench", "e20", "--ops", "256", "--json"]) == 0
        assert capsys.readouterr().out == first, \
            "e20 is virtual-only; its record must be byte-stable"

    def test_bench_e20_rejects_too_few_ops(self):
        from repro.kernel.errors import ConfigurationError
        import pytest
        with pytest.raises(ConfigurationError):
            main(["bench", "e20", "--ops", "10"])

    def test_bench_e21_json_is_deterministic(self, capsys):
        import json
        assert main(["bench", "e21", "--ops", "40", "--json"]) == 0
        first = capsys.readouterr().out
        payload = json.loads(first)
        assert payload["experiment"] == "e21"
        for row in payload["scenarios"]:
            for field in ("scenario", "deployment", "region", "read_ms",
                          "write_ms", "read_like_lan", "availability",
                          "stale_reads"):
                assert field in row
        assert main(["bench", "e21", "--ops", "40", "--json"]) == 0
        assert capsys.readouterr().out == first, \
            "e21 is virtual-only; its record must be byte-stable"

    def test_bench_e21_rejects_too_few_ops(self):
        from repro.kernel.errors import ConfigurationError
        import pytest
        with pytest.raises(ConfigurationError):
            main(["bench", "e21", "--ops", "10"])

    def test_bench_unknown_benchmark_fails(self, capsys):
        assert main(["bench", "e99"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_bench_e10_json_has_perf_gate_fields(self, capsys):
        import json
        assert main(["bench", "e10", "--ops", "20", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "e10"
        scenarios = {row["scenario"] for row in payload["scenarios"]}
        assert any(name.startswith("wire-") for name in scenarios)
        assert any(name.startswith("e2e-") for name in scenarios)
        for row in payload["scenarios"]:
            assert "norm_fast" in row
            if row["scenario"].startswith("wire-"):
                assert row["lossless"] is True
                assert "nbytes" in row

    def test_bench_simwall_json_has_perf_gate_fields(self, capsys):
        import json
        assert main(["bench", "simwall", "--ops", "8",
                     "--seed", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "simwall"
        for row in payload["scenarios"]:
            for field in ("scenario", "cases", "ok", "digest",
                          "norm_rate"):
                assert field in row
            assert len(row["digest"]) == 64
