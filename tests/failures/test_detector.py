"""Tests for the heartbeat failure detector."""

import pytest

from repro.core.export import get_space
from repro.failures.detector import ALIVE, SUSPECTED, FailureDetector
from repro.failures.injectors import message_loss, partitioned


@pytest.fixture
def watched(star):
    system, server, clients = star
    for ctx in clients:
        get_space(ctx)   # each peer needs a context manager to answer pings
    detector = FailureDetector(server, suspicion_threshold=2)
    for ctx in clients:
        detector.watch(ctx.context_id)
    return system, server, clients, detector


class TestDetection:
    def test_healthy_peers_alive(self, watched):
        system, server, clients, detector = watched
        statuses = detector.probe()
        assert all(status == ALIVE for status in statuses.values())
        assert detector.suspected() == []

    def test_crash_is_suspected_after_threshold(self, watched):
        system, server, clients, detector = watched
        clients[0].node.crash()
        detector.probe()
        assert detector.status(clients[0].context_id) == ALIVE, \
            "one miss is not enough"
        detector.probe()
        assert detector.status(clients[0].context_id) == SUSPECTED
        assert clients[0].context_id in detector.suspected()

    def test_recovery_clears_suspicion(self, watched):
        system, server, clients, detector = watched
        clients[0].node.crash()
        detector.probe()
        detector.probe()
        clients[0].node.restart()
        detector.probe()
        assert detector.status(clients[0].context_id) == ALIVE
        assert detector.stats["recoveries"] == 1

    def test_partition_indistinguishable_from_crash(self, watched):
        system, server, clients, detector = watched
        with partitioned(system, [{server.node.name},
                                  {ctx.node.name for ctx in clients}]):
            detector.probe()
            detector.probe()
        assert len(detector.suspected()) == 3
        detector.probe()   # healed
        assert detector.suspected() == []

    def test_transient_loss_usually_tolerated(self, watched):
        """A single lossy probe round must not suspect anyone (threshold 2)."""
        system, server, clients, detector = watched
        with message_loss(system, 0.3):
            detector.probe()
        assert detector.suspected() == []

    def test_detection_latency_is_real(self, watched):
        """Probing a dead peer costs the full retry budget in virtual time."""
        system, server, clients, detector = watched
        clients[0].node.crash()
        before = server.now
        detector.probe()
        assert server.now - before > system.costs.rpc_timeout * \
            system.costs.rpc_max_retries * 0.9

    def test_bookkeeping(self, watched):
        system, server, clients, detector = watched
        detector.probe()
        state = detector.peer(clients[0].context_id)
        assert state.probes == 1
        assert state.last_seen >= 0
        assert state.suspected_at is None

    def test_unwatch(self, watched):
        system, server, clients, detector = watched
        assert detector.unwatch(clients[0].context_id) is True
        assert detector.unwatch(clients[0].context_id) is False
        with pytest.raises(KeyError):
            detector.status(clients[0].context_id)
