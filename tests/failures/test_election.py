"""Tests for the per-replica election state machine (terms and leases)."""

import pytest

from repro.failures.election import DEFAULT_LEASE_TTL, ElectionState
from repro.wire import versions


class StubLog:
    """A replica log standing: a fixed digest is all elections need."""

    def __init__(self, entries=0):
        self.entries = entries

    def digest(self):
        return [["object", 1, self.entries]] if self.entries else []


class StubDetector:
    """A failure detector whose verdicts the test scripts directly."""

    def __init__(self):
        self.suspects = set()

    def status(self, context_id):
        from repro.failures.detector import ALIVE, SUSPECTED
        return SUSPECTED if context_id in self.suspects else ALIVE


def state(index=1, ttl=DEFAULT_LEASE_TTL, detector=None):
    return ElectionState(index, ("s0/main", "s1/main", "s2/main"),
                         ttl=ttl, detector=detector)


class TestBootstrap:
    def test_replica_zero_is_the_anointed_leader(self):
        st = state(index=0)
        assert st.term == 1
        assert st.leader == 0
        assert st.is_leader()

    def test_bootstrap_lease_covers_time_zero(self):
        st = state()
        assert st.lease_valid(0.0)
        assert st.lease_valid(DEFAULT_LEASE_TTL / 2)
        assert not st.lease_valid(DEFAULT_LEASE_TTL)


class TestVotes:
    def test_stale_term_is_refused(self):
        st = state()
        reply = st.control("vote", ["vote", 1, 2], now=9.0, log=StubLog())
        assert reply[versions.K_GRANT] is False
        assert reply[versions.K_TERM] == [1, 0]

    def test_valid_lease_blocks_the_vote_and_hints_expiry(self):
        st = state()
        reply = st.control("vote", ["vote", 2, 2], now=0.1, log=StubLog())
        assert reply[versions.K_GRANT] is False
        assert reply[versions.K_EXPIRY] == pytest.approx(DEFAULT_LEASE_TTL)

    def test_expired_lease_grants_with_the_digest(self):
        st = state()
        reply = st.control("vote", ["vote", 2, 2], now=1.0,
                           log=StubLog(entries=4))
        assert reply[versions.K_GRANT] is True
        assert reply[versions.K_DIGEST] == [["object", 1, 4]]
        assert st.vote_term == 2
        assert st.voted_for == 2

    def test_one_vote_per_term(self):
        st = state()
        first = st.control("vote", ["vote", 2, 2], now=1.0, log=StubLog())
        rival = st.control("vote", ["vote", 2, 0], now=1.0, log=StubLog())
        again = st.control("vote", ["vote", 2, 2], now=1.0, log=StubLog())
        assert first[versions.K_GRANT] is True
        assert rival[versions.K_GRANT] is False, \
            "the rule that makes same-term split brain impossible"
        assert again[versions.K_GRANT] is True, \
            "re-granting the same candidate is idempotent"

    def test_suspected_leader_unlocks_the_vote_early(self):
        detector = StubDetector()
        st = state(detector=detector)
        blocked = st.control("vote", ["vote", 2, 2], now=0.1, log=StubLog())
        detector.suspects.add("s0/main")
        granted = st.control("vote", ["vote", 3, 2], now=0.1, log=StubLog())
        assert blocked[versions.K_GRANT] is False
        assert granted[versions.K_GRANT] is True, \
            "suspicion shortcuts the lease wait"

    def test_suspicion_never_waives_one_vote_per_term(self):
        detector = StubDetector()
        detector.suspects.add("s0/main")
        st = state(detector=detector)
        st.control("vote", ["vote", 2, 2], now=0.1, log=StubLog())
        rival = st.control("vote", ["vote", 2, 1], now=0.1, log=StubLog())
        assert rival[versions.K_GRANT] is False


class TestAnnounceRenewAdopt:
    def test_announce_adopts_and_arms_the_lease(self):
        st = state()
        reply = st.control("announce", ["announce", 2, 2], now=1.0, log=None)
        assert reply[versions.K_GRANT] is True
        assert (st.term, st.leader) == (2, 2)
        assert st.lease_expiry == pytest.approx(1.0 + DEFAULT_LEASE_TTL)

    def test_stale_announce_is_refused(self):
        st = state()
        st.control("announce", ["announce", 3, 1], now=1.0, log=None)
        reply = st.control("announce", ["announce", 2, 2], now=2.0, log=None)
        assert reply[versions.K_GRANT] is False
        assert reply[versions.K_TERM] == [3, 1]

    def test_same_term_same_leader_reannounce_rearms(self):
        st = state()
        st.control("announce", ["announce", 2, 2], now=1.0, log=None)
        reply = st.control("announce", ["announce", 2, 2], now=5.0, log=None)
        assert reply[versions.K_GRANT] is True
        assert st.lease_expiry == pytest.approx(5.0 + DEFAULT_LEASE_TTL)

    def test_renew_extends_only_a_matching_leadership(self):
        st = state()
        good = st.control("renew", ["renew", 1, 0], now=0.2, log=None)
        bad = st.control("renew", ["renew", 1, 2], now=0.2, log=None)
        assert good[versions.K_GRANT] is True
        assert st.lease_expiry == pytest.approx(0.2 + DEFAULT_LEASE_TTL)
        assert bad[versions.K_GRANT] is False

    def test_renew_of_a_newer_term_adopts(self):
        st = state()
        reply = st.control("renew", ["renew", 4, 2], now=1.0, log=None)
        assert reply[versions.K_GRANT] is True
        assert (st.term, st.leader) == (4, 2)

    def test_adopt_ignores_stale_terms(self):
        st = state()
        st.adopt(3, 2, now=1.0)
        assert st.adopt(2, 1, now=2.0) is False
        assert (st.term, st.leader) == (3, 2)


class TestFencing:
    def test_current_term_passes(self):
        assert state().fence(1) is None

    def test_stale_term_is_redirected(self):
        st = state()
        st.adopt(5, 2, now=0.0)
        reply = st.fence(1)
        assert reply == {versions.K_FENCED: [5, 2]}
        assert st.counters.get("fencing_rejects") == 1

    def test_status_reply_shape(self):
        st = state()
        reply = st.control("status", ["status"], now=0.0,
                           log=StubLog(entries=2))
        assert reply[versions.K_TERM] == [1, 0]
        assert reply[versions.K_EXPIRY] == pytest.approx(DEFAULT_LEASE_TTL)
        assert reply[versions.K_DIGEST] == [["object", 1, 2]]

    def test_unknown_control_raises(self):
        with pytest.raises(versions.ProtocolError):
            state().control("coup", ["coup"], now=0.0, log=None)
