"""CrashPlan edge cases and detector/breaker flapping behaviour."""

from repro.core.export import get_space
from repro.failures.detector import ALIVE, SUSPECTED, FailureDetector
from repro.failures.injectors import CrashPlan
from repro.resilience.breaker import CLOSED, OPEN, BreakerRegistry


class TestCrashPlanEdges:
    def test_outage_at_op_zero(self, system):
        node = system.add_node("server")
        plan = CrashPlan({0: ("server", 2)})
        plan.tick(system)
        assert not node.alive, "the very first tick can crash a node"
        plan.tick(system)
        assert not node.alive
        plan.tick(system)
        assert node.alive, "restart lands 2 ops after the crash"

    def test_overlapping_outages_on_the_same_node(self, system):
        """A second outage scheduled while the node is already down must not
        crash a dead node twice; the earlier restart still applies."""
        node = system.add_node("server")
        plan = CrashPlan({0: ("server", 5), 2: ("server", 5)})
        alive = []
        for _ in range(8):
            plan.tick(system)
            alive.append(node.alive)
        # Down from op 0; the first outage's restart at op 5 revives it; the
        # second outage's restart at op 7 finds it already alive (no-op).
        assert alive == [False, False, False, False, False, True, True, True]

    def test_restart_tick_coinciding_with_another_crash_tick(self, system):
        """When a restart and a crash land on the same tick, the restart is
        processed first and the crash wins the tick."""
        node = system.add_node("server")
        plan = CrashPlan({0: ("server", 3), 3: ("server", 2)})
        states = []
        for _ in range(6):
            plan.tick(system)
            states.append(node.alive)
        assert states[:3] == [False, False, False]
        assert states[3] is False, "restarted and immediately re-crashed"
        assert states[5] is True, "the second outage's restart applies"

    def test_periodic_round_robins_the_victims(self, system):
        for name in ("a", "b"):
            system.add_node(name)
        plan = CrashPlan.periodic(["a", "b"], every=2, duration=1,
                                  total_ops=8)
        assert plan.outages == {2: ("a", 1), 4: ("b", 1), 6: ("a", 1)}


class TestDetectorFlapping:
    def _watched(self, star):
        system, server, clients = star
        peer = clients[0]
        get_space(peer)   # the peer needs a context manager to answer pings
        detector = FailureDetector(server, suspicion_threshold=2)
        detector.watch(peer.context_id)
        return system, server, peer, detector

    def test_alternating_hit_miss_never_suspects(self, star):
        """A flapping peer (alternating up/down between probe rounds) never
        reaches two *consecutive* misses, so suspicion must not oscillate."""
        system, server, peer, detector = self._watched(star)
        for _ in range(4):
            peer.node.crash()
            detector.probe()
            assert detector.status(peer.context_id) == ALIVE
            peer.node.restart()
            detector.probe()
            assert detector.status(peer.context_id) == ALIVE
        assert detector.stats["suspicions"] == 0
        assert detector.stats["recoveries"] == 0, \
            "never suspected, so nothing to recover from"

    def test_flapping_does_not_oscillate_breakers(self, star):
        system, server, peer, detector = self._watched(star)
        registry = BreakerRegistry(system)
        detector.breakers = registry
        registry.between(server.context_id, peer.context_id)
        for _ in range(3):
            peer.node.crash()
            detector.probe()
            peer.node.restart()
            detector.probe()
        breaker = registry.between(server.context_id, peer.context_id)
        assert breaker.state(server.clock.now) == CLOSED
        assert breaker.stats["trips"] == 0, \
            "sub-threshold flapping must not force breakers open"


class TestDetectorBreakerExchange:
    def _watched_with_breakers(self, star):
        system, server, clients = star
        peer = clients[0]
        get_space(peer)
        registry = BreakerRegistry(system)
        detector = FailureDetector(server, suspicion_threshold=2,
                                   breakers=registry)
        detector.watch(peer.context_id)
        return system, server, peer, detector, registry

    def test_suspicion_trips_every_breaker_toward_the_peer(self, star):
        system, server, peer, detector, registry = \
            self._watched_with_breakers(star)
        registry.between("other/main", peer.context_id)
        peer.node.crash()
        detector.probe()
        detector.probe()
        assert detector.status(peer.context_id) == SUSPECTED
        breaker = registry.between("other/main", peer.context_id)
        assert breaker.state(server.clock.now) == OPEN, \
            "the detector's verdict fans out to every caller's breaker"

    def test_recovery_resets_the_breakers(self, star):
        system, server, peer, detector, registry = \
            self._watched_with_breakers(star)
        registry.between("other/main", peer.context_id)
        peer.node.crash()
        detector.probe()
        detector.probe()
        peer.node.restart()
        detector.probe()
        assert detector.status(peer.context_id) == ALIVE
        breaker = registry.between("other/main", peer.context_id)
        assert breaker.state(server.clock.now) == CLOSED

    def test_consult_breakers_folds_open_circuits_into_suspicion(self, star):
        system, server, peer, detector, registry = \
            self._watched_with_breakers(star)
        breaker = registry.between("other/main", peer.context_id)
        breaker.trip(server.clock.now)
        newly = detector.consult_breakers()
        assert newly == [peer.context_id]
        assert detector.status(peer.context_id) == SUSPECTED
        assert detector.consult_breakers() == [], "already suspected"

    def test_consult_breakers_without_a_registry_is_a_noop(self, star):
        system, server, clients = star
        detector = FailureDetector(server)
        detector.watch(clients[0].context_id)
        assert detector.consult_breakers() == []
