"""Tests for failure injection."""

import pytest

from repro.apps.kv import KVStore
from repro.core.export import get_space
from repro.failures.injectors import (
    CrashPlan,
    degraded_link,
    message_loss,
    partitioned,
)
from repro.kernel.errors import RpcTimeout


@pytest.fixture
def wired(pair):
    system, server, client = pair
    store = KVStore()
    ref = get_space(server).export(store)
    proxy = get_space(client).bind_ref(ref)
    return system, server, client, proxy


class TestMessageLoss:
    def test_scoped_loss_restores(self, wired):
        system, server, client, proxy = wired
        with message_loss(system, 0.4):
            proxy.put("k", 1)
        # Outside the scope the network is reliable again.
        retries_before = system.rpc.stats["retries"]
        for index in range(20):
            proxy.put(f"clean{index}", index)
        assert system.rpc.stats["retries"] == retries_before

    def test_total_loss_times_out(self, wired):
        system, server, client, proxy = wired
        with message_loss(system, 1.0):
            with pytest.raises(RpcTimeout):
                proxy.get("k")


class TestDegradedLink:
    def test_latency_override_applies_and_reverts(self, wired):
        system, server, client, proxy = wired
        proxy.get("k")
        client.now
        with degraded_link(system, client.node.name, server.node.name,
                           latency=0.1):
            t0 = client.now
            proxy.get("k")
            degraded = client.now - t0
        assert degraded >= 0.2, "two slow one-way hops"
        t0 = client.now
        proxy.get("k")
        assert client.now - t0 < 0.1


class TestPartition:
    def test_partition_blocks_and_heals(self, wired):
        system, server, client, proxy = wired
        with partitioned(system, [{server.node.name}, {client.node.name}]):
            with pytest.raises(RpcTimeout):
                proxy.get("k")
        assert proxy.get("k") is None  # healed


class TestCrashPlan:
    def test_outage_window(self, wired):
        system, server, client, proxy = wired
        plan = CrashPlan(outages={2: (server.node.name, 3)})
        alive = []
        for _ in range(8):
            plan.tick(system)
            alive.append(server.node.alive)
        assert alive == [True, True, False, False, False, True, True, True]

    def test_periodic_plan_layout(self):
        plan = CrashPlan.periodic(["a", "b"], every=10, duration=2,
                                  total_ops=40)
        assert set(plan.outages) == {10, 20, 30}
        victims = [plan.outages[i][0] for i in sorted(plan.outages)]
        assert victims == ["a", "b", "a"]

    def test_plan_drives_real_failures(self, wired):
        system, server, client, proxy = wired
        plan = CrashPlan(outages={1: (server.node.name, 2)})
        outcomes = []
        for index in range(5):
            plan.tick(system)
            try:
                proxy.put(f"k{index}", index)
                outcomes.append("ok")
            except RpcTimeout:
                outcomes.append("fail")
        assert outcomes[0] == "ok"
        assert "fail" in outcomes[1:3]
        assert outcomes[-1] == "ok"
