"""Shared fixtures: wired systems and common topologies."""

from __future__ import annotations

import pytest

import repro
from repro.naming.bootstrap import install_name_service


@pytest.fixture
def system():
    """A wired system with no nodes yet."""
    return repro.make_system(seed=1234)


@pytest.fixture
def star():
    """(system, server_ctx, [client_ctxs]) with a name service on the server."""
    sys_ = repro.make_system(seed=99)
    server = sys_.add_node("server").create_context("main")
    clients = [sys_.add_node(f"client{i}").create_context("main")
               for i in range(3)]
    install_name_service(server)
    return sys_, server, clients


@pytest.fixture
def pair(star):
    """(system, server_ctx, one_client_ctx)."""
    sys_, server, clients = star
    return sys_, server, clients[0]
