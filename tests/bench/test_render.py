"""Tests for the bench renderer and shape helpers."""

import pytest

from repro.bench.render import (
    crossover_x,
    fmt,
    render_series,
    render_table,
    who_wins,
)

ROWS = [
    {"x": 1, "a_ms": 10.0, "b_ms": 5.0, "who": "a"},
    {"x": 2, "a_ms": 8.0, "b_ms": 6.0, "who": "a"},
    {"x": 3, "a_ms": 4.0, "b_ms": 7.0, "who": "b"},
]


class TestFmt:
    def test_floats_trimmed(self):
        assert fmt(1.23456) == "1.235"
        assert fmt(0.0) == "0"

    def test_extremes_use_scientific(self):
        assert "e" in fmt(1234567.0)

    def test_bools(self):
        assert fmt(True) == "yes"
        assert fmt(False) == "no"

    def test_strings_pass_through(self):
        assert fmt("label") == "label"


class TestRenderTable:
    def test_contains_all_cells(self):
        text = render_table(ROWS, "Title")
        assert "Title" in text
        assert "a_ms" in text
        assert "10" in text

    def test_columns_aligned(self):
        lines = render_table(ROWS).splitlines()
        header, rule = lines[0], lines[1]
        assert len(header) == len(rule)

    def test_explicit_column_selection(self):
        text = render_table(ROWS, columns=["x", "who"])
        assert "a_ms" not in text

    def test_empty_rows(self):
        assert "no rows" in render_table([], "T")


class TestRenderSeries:
    def test_bars_scale(self):
        text = render_series(ROWS, "x", "a_ms")
        lines = text.splitlines()
        assert lines[0].count("#") > lines[2].count("#")

    def test_empty(self):
        assert "no points" in render_series([], "x", "y")


class TestShapeHelpers:
    def test_who_wins_lower(self):
        assert who_wins(ROWS, "who", "a_ms") == "b"

    def test_who_wins_higher(self):
        assert who_wins(ROWS, "who", "a_ms", lower_is_better=False) == "a"

    def test_who_wins_empty_rejected(self):
        with pytest.raises(ValueError):
            who_wins([], "who", "a_ms")

    def test_crossover(self):
        assert crossover_x(ROWS, "x", "a_ms", "b_ms") == 3

    def test_no_crossover(self):
        rows = [{"x": 1, "a": 9, "b": 1}, {"x": 2, "a": 9, "b": 1}]
        assert crossover_x(rows, "x", "a", "b") is None
