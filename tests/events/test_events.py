"""Tests for event channels and reliable subscribers."""

import pytest

import repro
from repro.events import EventChannel, EventSubscriber, topic_matches
from repro.failures.injectors import message_loss


@pytest.fixture
def bus(star):
    system, server, clients = star
    repro.register(server, "bus", EventChannel())
    return system, server, clients


def channel_for(ctx):
    return repro.bind(ctx, "bus")


class TestTopicMatching:
    @pytest.mark.parametrize("pattern,topic,expected", [
        ("a", "a", True),
        ("a", "b", False),
        ("a/b", "a/b", True),
        ("a/*", "a/b", True),
        ("a/*", "a/b/c", True),
        ("a/*", "a", True),
        ("a/*", "ab", False),
        ("*", "anything", False),
    ])
    def test_patterns(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected


class TestFanout:
    def test_event_reaches_matching_subscribers(self, bus):
        system, server, clients = bus
        subs = [EventSubscriber(ctx, channel_for(ctx), ["builds/*"])
                for ctx in clients[:2]]
        other = EventSubscriber(clients[2], channel_for(clients[2]),
                                ["deploys/*"])
        publisher = channel_for(clients[0])
        publisher.publish("builds/linux", {"status": "green"})
        for sub in subs:
            assert len(sub.events) == 1
            assert sub.events[0][1] == "builds/linux"
        assert other.events == []

    def test_sequence_numbers_are_global(self, bus):
        system, server, clients = bus
        sub = EventSubscriber(clients[0], channel_for(clients[0]), ["t"])
        publisher = channel_for(clients[1])
        seqs = [publisher.publish("t", index) for index in range(3)]
        assert seqs == [1, 2, 3]
        assert [seq for seq, _, _ in sub.ordered_events()] == [1, 2, 3]

    def test_unsubscribe_stops_delivery(self, bus):
        system, server, clients = bus
        sub = EventSubscriber(clients[0], channel_for(clients[0]), ["t"])
        publisher = channel_for(clients[1])
        publisher.publish("t", 1)
        sub.close()
        publisher.publish("t", 2)
        assert len(sub.events) == 1

    def test_handler_callback_invoked(self, bus):
        system, server, clients = bus
        seen = []
        EventSubscriber(clients[0], channel_for(clients[0]), ["t"],
                        on_event=lambda seq, topic, payload:
                        seen.append(payload))
        channel_for(clients[1]).publish("t", "ping")
        assert seen == ["ping"]

    def test_subscriber_count(self, bus):
        system, server, clients = bus
        channel = channel_for(clients[0])
        a = EventSubscriber(clients[0], channel, ["t"])
        EventSubscriber(clients[1], channel_for(clients[1]), ["t"])
        assert channel.subscriber_count() == 2
        a.close()
        assert channel.subscriber_count() == 1


class TestReliability:
    def test_loss_then_catch_up(self, bus):
        from repro.kernel.errors import RpcTimeout
        system, server, clients = bus
        sub = EventSubscriber(clients[0], channel_for(clients[0]), ["t"])
        publisher = channel_for(clients[1])
        with message_loss(system, 0.5):
            for index in range(20):
                try:
                    publisher.publish("t", index)
                except RpcTimeout:
                    pass  # the publish itself may still have executed
        published = publisher.last_seq()
        assert published > 0
        # One-way fan-out under 50% loss: pushes went missing.
        assert len(sub.events) < published
        assert sub.gaps()
        recovered = sub.catch_up()
        assert recovered > 0
        assert len(sub.events) == published
        assert not sub.gaps()
        seqs = [seq for seq, _, _ in sub.ordered_events()]
        assert seqs == list(range(1, published + 1))

    def test_late_subscriber_sees_nothing_before_baseline(self, bus):
        system, server, clients = bus
        publisher = channel_for(clients[1])
        publisher.publish("t", "early")
        sub = EventSubscriber(clients[0], channel_for(clients[0]), ["t"])
        assert sub.catch_up() == 0
        publisher.publish("t", "late")
        assert [payload for _, _, payload in sub.ordered_events()] == ["late"]

    def test_crashed_subscriber_does_not_break_publishing(self, bus):
        system, server, clients = bus
        sub = EventSubscriber(clients[0], channel_for(clients[0]), ["t"])
        publisher = channel_for(clients[1])
        clients[0].node.crash()
        assert publisher.publish("t", 1) == 1
        clients[0].node.restart()
        sub.catch_up()
        assert len(sub.events) == 1

    def test_replay_log_capacity(self, star):
        system, server, clients = star
        repro.register(server, "bus", EventChannel(log_capacity=5))
        publisher = channel_for(clients[0])
        for index in range(10):
            publisher.publish("t", index)
        replayed = publisher.replay(["t"], 0)
        assert len(replayed) == 5
        assert replayed[0][2] == 5, "oldest events fell off the ring"

    def test_principle_holds(self, bus):
        system, server, clients = bus
        [EventSubscriber(ctx, channel_for(ctx), ["t"])
                for ctx in clients]
        channel_for(clients[0]).publish("t", 1)
        repro.assert_principle(system)
