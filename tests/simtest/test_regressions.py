"""Seed-replay regression corpus: every recorded case, verbatim, forever.

Each ``regressions/*.json`` file is a :class:`SimCase` plus the verdict it
must keep producing.  Cases land here when a seed once exposed (or once
certified) behaviour worth pinning; replaying them verbatim turns every
past incident into a permanent CI gate.  To add one::

    python -m repro simtest --seed N --policy P --json > case.json
    # trim to {"case": ..., "expect": ..., "note": ...} and drop it in
"""

import json
import pathlib

import pytest

from repro.simtest.runner import replay

CORPUS = pathlib.Path(__file__).parent / "regressions"
CASES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert len(CASES) >= 5


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_recorded_case_keeps_its_verdict(path):
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["expect"] in ("ok", "violation"), path.name
    report = replay(data, minimize=False)
    assert report.verdict == data["expect"], (
        f"{path.name}: expected {data['expect']!r}, got {report.verdict!r}"
        f" — a behaviour this corpus pinned has changed")


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_recorded_fingerprint_still_matches(path):
    """The stronger gate: the *trace* must replay byte-for-byte.

    If a deliberate change to simulation timing breaks this, re-record the
    fingerprint (the verdict test above is the part that must never be
    weakened).
    """
    data = json.loads(path.read_text(encoding="utf-8"))
    if "fingerprint" not in data:
        pytest.skip("case recorded without a fingerprint")
    report = replay(data, minimize=False)
    assert report.fingerprint == data["fingerprint"], (
        f"{path.name}: simulation timing drifted; if intentional, "
        "re-record with python -m repro simtest --replay")
