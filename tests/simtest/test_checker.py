"""Unit tests for the Wing–Gong linearizability checker."""

import pytest

from repro.simtest.checker import CONSISTENCY_MODES, check_history
from repro.simtest.history import History, Op
from repro.simtest.models import KVModel, LockModel


def op(index, client, verb, args, invoke, complete, status="ok",
       result=None, error=""):
    return Op(index=index, client=client, verb=verb, args=list(args),
              invoke=invoke, complete=complete, status=status,
              result=result, error=error)


def history(*ops):
    return History(ops=list(ops))


class TestLinearizable:
    def test_sequential_history_passes(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, result=True),
            op(1, "a", "get", ("k",), 2.0, 3.0, result=1),
            op(2, "a", "delete", ("k",), 4.0, 5.0, result=True),
            op(3, "a", "get", ("k",), 6.0, 7.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_concurrent_read_linearizes_inside_slow_write(self):
        # The get was *recorded* after the put began but completed first;
        # only the order put-then-get explains result 1.
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 10.0, result=True),
            op(1, "b", "get", ("k",), 4.0, 6.0, result=1),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_concurrent_read_may_also_precede_write(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 10.0, result=True),
            op(1, "b", "get", ("k",), 4.0, 6.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_per_key_partitioning(self):
        h = history(
            op(0, "a", "put", ("k0", 1), 0.0, 1.0, result=True),
            op(1, "b", "put", ("k1", 2), 0.5, 1.5, result=True),
            op(2, "a", "get", ("k1",), 2.0, 3.0, result=2),
            op(3, "b", "get", ("k0",), 2.0, 3.0, result=1),
        )
        result = check_history(h, KVModel())
        assert result.verdict == "ok"
        assert result.partitions == 2

    def test_app_exception_marker_matches_model(self):
        h = history(
            op(0, "a", "release", ("l", "a"), 0.0, 1.0,
               result="!PermissionError"),
            op(1, "a", "try_acquire", ("l", "a"), 2.0, 3.0, result=True),
            op(2, "b", "release", ("l", "b"), 4.0, 5.0,
               result="!PermissionError"),
        )
        assert check_history(h, LockModel()).verdict == "ok"


class TestViolations:
    def test_stale_read_is_convicted(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, result=True),
            op(1, "b", "put", ("k", 2), 2.0, 3.0, result=True),
            op(2, "a", "get", ("k",), 4.0, 5.0, result=1),
        )
        result = check_history(h, KVModel())
        assert result.verdict == "violation"
        assert result.violation.partition == repr("k")
        assert len(result.violation.ops) == 3
        assert result.violation.longest_prefix < 3

    def test_lost_update_is_convicted(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, result=True),
            op(1, "a", "get", ("k",), 2.0, 3.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "violation"

    def test_wrong_result_on_real_time_edge(self):
        # get completes strictly before put is invoked: no reordering.
        h = history(
            op(0, "b", "get", ("k",), 0.0, 1.0, result=7),
            op(1, "a", "put", ("k", 7), 2.0, 3.0, result=True),
        )
        assert check_history(h, KVModel()).verdict == "violation"


class TestMaybeSemantics:
    def test_maybe_write_may_have_applied(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, None, status="maybe",
               error="RpcTimeout"),
            op(1, "b", "get", ("k",), 5.0, 6.0, result=1),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_maybe_write_may_have_been_lost(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, None, status="maybe",
               error="RpcTimeout"),
            op(1, "b", "get", ("k",), 5.0, 6.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_maybe_write_cannot_unapply(self):
        # Once a read observed the maybe-put's value, a later read cannot
        # revert to the old state.
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, None, status="maybe",
               error="RpcTimeout"),
            op(1, "b", "get", ("k",), 5.0, 6.0, result=1),
            op(2, "b", "get", ("k",), 7.0, 8.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "violation"

    def test_maybe_has_open_completion(self):
        # The maybe op's effect may land after ops invoked much later.
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, None, status="maybe",
               error="RpcTimeout"),
            op(1, "b", "get", ("k",), 100.0, 101.0, result=None),
            op(2, "b", "get", ("k",), 102.0, 103.0, result=1),
        )
        assert check_history(h, KVModel()).verdict == "ok"


class TestExclusions:
    def test_definite_fail_is_excluded(self):
        # A breaker fast-fail carries no constraint, however absurd the
        # surrounding history would be with it included.
        h = history(
            op(0, "a", "put", ("k", 9), 0.0, 1.0, status="fail",
               error="CircuitOpen"),
            op(1, "b", "get", ("k",), 2.0, 3.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_failed_read_is_excluded(self):
        h = history(
            op(0, "a", "get", ("k",), 0.0, 1.0, status="fail",
               error="RpcTimeout"),
            op(1, "b", "put", ("k", 1), 2.0, 3.0, result=True),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_all_failed_history_is_trivially_ok(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, status="fail",
               error="CircuitOpen"),
        )
        assert check_history(h, KVModel()).verdict == "ok"


class TestBudget:
    def test_budget_exhaustion_reports_unknown(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 5.0, result=True),
            op(1, "b", "put", ("k", 2), 0.0, 5.0, result=True),
            op(2, "c", "get", ("k",), 6.0, 7.0, result=2),
        )
        result = check_history(h, KVModel(), max_nodes=1)
        assert result.capped
        assert result.verdict == "unknown"

    def test_generous_budget_settles_the_same_history(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 5.0, result=True),
            op(1, "b", "put", ("k", 2), 0.0, 5.0, result=True),
            op(2, "c", "get", ("k",), 6.0, 7.0, result=2),
        )
        result = check_history(h, KVModel())
        assert result.verdict == "ok"
        assert not result.capped


class TestConsistencyModes:
    def test_unknown_mode_raises(self):
        h = history(op(0, "a", "get", ("k",), 0.0, 1.0, result=None))
        with pytest.raises(ValueError):
            check_history(h, KVModel(), consistency="eventual")

    def test_mode_registry_is_strongest_first(self):
        assert CONSISTENCY_MODES == ("linearizable", "sequential", "causal",
                                     "read-your-writes")

    def test_cross_client_stale_read_grades_by_mode(self):
        # b's write is acknowledged before a's read begins, yet a still
        # sees the old value.  Linearizability forbids that (real time);
        # sequential consistency allows it (b's write may order after a's
        # read); read-your-writes allows it (the stale value is a's *own*
        # last write).
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, result=True),
            op(1, "b", "put", ("k", 2), 2.0, 3.0, result=True),
            op(2, "a", "get", ("k",), 4.0, 5.0, result=1),
        )
        assert check_history(h, KVModel()).verdict == "violation"
        assert check_history(h, KVModel(),
                             consistency="sequential").verdict == "ok"
        assert check_history(h, KVModel(),
                             consistency="read-your-writes").verdict == "ok"

    def test_same_client_stale_read_violates_every_mode(self):
        # A client failing to see its *own* acknowledged write breaks even
        # the weakest contract here.
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, result=True),
            op(1, "a", "put", ("k", 2), 2.0, 3.0, result=True),
            op(2, "a", "get", ("k",), 4.0, 5.0, result=1),
        )
        for mode in CONSISTENCY_MODES:
            assert check_history(h, KVModel(),
                                 consistency=mode).verdict == "violation", \
                mode

    def test_sequential_needs_the_combined_search(self):
        # IRIW-shaped: two readers observe two independent writes in
        # opposite orders.  Each key's sub-history alone admits a
        # program-order-respecting total order — only the single combined
        # partition (CombinedModel) exposes the cross-key cycle.
        h = history(
            op(0, "w1", "put", ("x", 1), 0.0, 20.0, result=True),
            op(1, "w2", "put", ("y", 1), 0.0, 20.0, result=True),
            op(2, "r1", "get", ("x",), 1.0, 2.0, result=1),
            op(3, "r1", "get", ("y",), 3.0, 4.0, result=None),
            op(4, "r2", "get", ("y",), 1.0, 2.0, result=1),
            op(5, "r2", "get", ("x",), 3.0, 4.0, result=None),
        )
        assert check_history(h, KVModel(),
                             consistency="sequential").verdict == "violation"

    def test_ryw_still_enforces_monotonic_self_reads(self):
        # Under RYW another client's write is a maybe-op: once observed it
        # cannot un-apply for the observer.
        h = history(
            op(0, "b", "put", ("k", 9), 0.0, 1.0, result=True),
            op(1, "a", "get", ("k",), 2.0, 3.0, result=9),
            op(2, "a", "get", ("k",), 4.0, 5.0, result=None),
        )
        assert check_history(h, KVModel(),
                             consistency="read-your-writes").verdict == \
            "violation"

    def test_ryw_partitions_are_labelled_per_client(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, result=True),
            op(1, "a", "put", ("k", 2), 2.0, 3.0, result=True),
            op(2, "a", "get", ("k",), 4.0, 5.0, result=1),
        )
        result = check_history(h, KVModel(),
                               consistency="read-your-writes")
        assert result.violation.partition == "a:" + repr("k")


class TestHistoryMarshalling:
    def test_json_round_trip_preserves_verdict(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, result=True),
            op(1, "b", "put", ("k", 2), 2.0, None, status="maybe",
               error="RpcTimeout"),
            op(2, "a", "get", ("k",), 4.0, 5.0, result=2),
        )
        rebuilt = History.from_json(h.to_json())
        assert rebuilt.to_json() == h.to_json()
        assert check_history(rebuilt, KVModel()).verdict == \
            check_history(h, KVModel()).verdict
