"""Unit tests for the Wing–Gong linearizability checker."""

from repro.simtest.checker import check_history
from repro.simtest.history import History, Op
from repro.simtest.models import KVModel, LockModel


def op(index, client, verb, args, invoke, complete, status="ok",
       result=None, error=""):
    return Op(index=index, client=client, verb=verb, args=list(args),
              invoke=invoke, complete=complete, status=status,
              result=result, error=error)


def history(*ops):
    return History(ops=list(ops))


class TestLinearizable:
    def test_sequential_history_passes(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, result=True),
            op(1, "a", "get", ("k",), 2.0, 3.0, result=1),
            op(2, "a", "delete", ("k",), 4.0, 5.0, result=True),
            op(3, "a", "get", ("k",), 6.0, 7.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_concurrent_read_linearizes_inside_slow_write(self):
        # The get was *recorded* after the put began but completed first;
        # only the order put-then-get explains result 1.
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 10.0, result=True),
            op(1, "b", "get", ("k",), 4.0, 6.0, result=1),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_concurrent_read_may_also_precede_write(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 10.0, result=True),
            op(1, "b", "get", ("k",), 4.0, 6.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_per_key_partitioning(self):
        h = history(
            op(0, "a", "put", ("k0", 1), 0.0, 1.0, result=True),
            op(1, "b", "put", ("k1", 2), 0.5, 1.5, result=True),
            op(2, "a", "get", ("k1",), 2.0, 3.0, result=2),
            op(3, "b", "get", ("k0",), 2.0, 3.0, result=1),
        )
        result = check_history(h, KVModel())
        assert result.verdict == "ok"
        assert result.partitions == 2

    def test_app_exception_marker_matches_model(self):
        h = history(
            op(0, "a", "release", ("l", "a"), 0.0, 1.0,
               result="!PermissionError"),
            op(1, "a", "try_acquire", ("l", "a"), 2.0, 3.0, result=True),
            op(2, "b", "release", ("l", "b"), 4.0, 5.0,
               result="!PermissionError"),
        )
        assert check_history(h, LockModel()).verdict == "ok"


class TestViolations:
    def test_stale_read_is_convicted(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, result=True),
            op(1, "b", "put", ("k", 2), 2.0, 3.0, result=True),
            op(2, "a", "get", ("k",), 4.0, 5.0, result=1),
        )
        result = check_history(h, KVModel())
        assert result.verdict == "violation"
        assert result.violation.partition == repr("k")
        assert len(result.violation.ops) == 3
        assert result.violation.longest_prefix < 3

    def test_lost_update_is_convicted(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, result=True),
            op(1, "a", "get", ("k",), 2.0, 3.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "violation"

    def test_wrong_result_on_real_time_edge(self):
        # get completes strictly before put is invoked: no reordering.
        h = history(
            op(0, "b", "get", ("k",), 0.0, 1.0, result=7),
            op(1, "a", "put", ("k", 7), 2.0, 3.0, result=True),
        )
        assert check_history(h, KVModel()).verdict == "violation"


class TestMaybeSemantics:
    def test_maybe_write_may_have_applied(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, None, status="maybe",
               error="RpcTimeout"),
            op(1, "b", "get", ("k",), 5.0, 6.0, result=1),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_maybe_write_may_have_been_lost(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, None, status="maybe",
               error="RpcTimeout"),
            op(1, "b", "get", ("k",), 5.0, 6.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_maybe_write_cannot_unapply(self):
        # Once a read observed the maybe-put's value, a later read cannot
        # revert to the old state.
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, None, status="maybe",
               error="RpcTimeout"),
            op(1, "b", "get", ("k",), 5.0, 6.0, result=1),
            op(2, "b", "get", ("k",), 7.0, 8.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "violation"

    def test_maybe_has_open_completion(self):
        # The maybe op's effect may land after ops invoked much later.
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, None, status="maybe",
               error="RpcTimeout"),
            op(1, "b", "get", ("k",), 100.0, 101.0, result=None),
            op(2, "b", "get", ("k",), 102.0, 103.0, result=1),
        )
        assert check_history(h, KVModel()).verdict == "ok"


class TestExclusions:
    def test_definite_fail_is_excluded(self):
        # A breaker fast-fail carries no constraint, however absurd the
        # surrounding history would be with it included.
        h = history(
            op(0, "a", "put", ("k", 9), 0.0, 1.0, status="fail",
               error="CircuitOpen"),
            op(1, "b", "get", ("k",), 2.0, 3.0, result=None),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_failed_read_is_excluded(self):
        h = history(
            op(0, "a", "get", ("k",), 0.0, 1.0, status="fail",
               error="RpcTimeout"),
            op(1, "b", "put", ("k", 1), 2.0, 3.0, result=True),
        )
        assert check_history(h, KVModel()).verdict == "ok"

    def test_all_failed_history_is_trivially_ok(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, status="fail",
               error="CircuitOpen"),
        )
        assert check_history(h, KVModel()).verdict == "ok"


class TestBudget:
    def test_budget_exhaustion_reports_unknown(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 5.0, result=True),
            op(1, "b", "put", ("k", 2), 0.0, 5.0, result=True),
            op(2, "c", "get", ("k",), 6.0, 7.0, result=2),
        )
        result = check_history(h, KVModel(), max_nodes=1)
        assert result.capped
        assert result.verdict == "unknown"

    def test_generous_budget_settles_the_same_history(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 5.0, result=True),
            op(1, "b", "put", ("k", 2), 0.0, 5.0, result=True),
            op(2, "c", "get", ("k",), 6.0, 7.0, result=2),
        )
        result = check_history(h, KVModel())
        assert result.verdict == "ok"
        assert not result.capped


class TestHistoryMarshalling:
    def test_json_round_trip_preserves_verdict(self):
        h = history(
            op(0, "a", "put", ("k", 1), 0.0, 1.0, result=True),
            op(1, "b", "put", ("k", 2), 2.0, None, status="maybe",
               error="RpcTimeout"),
            op(2, "a", "get", ("k",), 4.0, 5.0, result=2),
        )
        rebuilt = History.from_json(h.to_json())
        assert rebuilt.to_json() == h.to_json()
        assert check_history(rebuilt, KVModel()).verdict == \
            check_history(h, KVModel()).verdict
