"""Minimizer convergence: shrink a convicted case, keep the conviction."""

from repro.simtest import build_case, minimize_case
from repro.simtest.checker import DEFAULT_MAX_NODES
from repro.simtest.runner import _violates


def _dirty_case():
    # Fault-free dirty-cache run: every put is an "ok" the checker must
    # honour, so the stale reads have no escape hatch.  Known-violating.
    return build_case(0, "dirtycache", service="kv", ops=30, chaos=False)


def test_minimizer_converges_and_preserves_the_violation():
    case = _dirty_case()
    assert _violates(case, DEFAULT_MAX_NODES)
    minimized = minimize_case(
        case, lambda c: _violates(c, DEFAULT_MAX_NODES))
    assert minimized.ops < case.ops
    assert minimized.faults == ()
    assert _violates(minimized, DEFAULT_MAX_NODES)


def test_minimizer_is_deterministic():
    shrink = lambda: minimize_case(        # noqa: E731
        _dirty_case(), lambda c: _violates(c, DEFAULT_MAX_NODES))
    assert shrink().to_json() == shrink().to_json()


def test_minimizer_drops_irrelevant_faults():
    # Chaos faults on a dirty cache are noise: the fault-free prefix
    # already violates, so phase 1 should strip every droppable fault.
    case = build_case(7, "dirtycache", service="kv", ops=30)
    assert case.faults, "seed 7 is expected to carry chaos"
    assert _violates(case, DEFAULT_MAX_NODES)
    minimized = minimize_case(
        case, lambda c: _violates(c, DEFAULT_MAX_NODES))
    assert len(minimized.faults) < len(case.faults)
    assert _violates(minimized, DEFAULT_MAX_NODES)


def test_minimizer_budget_is_respected():
    case = _dirty_case()
    assert minimize_case(case, lambda c: True, max_runs=0) == case


def test_minimizer_returns_original_when_nothing_shrinks():
    case = _dirty_case()
    assert minimize_case(case, lambda c: False) == case
