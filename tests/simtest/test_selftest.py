"""The harness's own acceptance test.

Two halves, and both matter: the deliberately broken ``dirtycache`` policy
must be convicted (the harness can still detect bugs), and every shipped
policy must pass a seed battery clean (the harness does not cry wolf).
"""

import pytest

from repro.simtest import build_case, run_battery, run_case
from repro.simtest.runner import SimCase
from repro.simtest.workload import FAULT_MENUS, SHIPPED_POLICIES
from repro.failures.schedule import FAULT_KINDS, PRIMARY_FAULT_KINDS


class TestDirtyCacheIsConvicted:
    def test_violation_is_found_minimized_and_confirmed(self):
        case = build_case(0, "dirtycache", service="kv", ops=30,
                          chaos=False)
        report = run_case(case)
        assert report.verdict == "violation"
        assert report.violation is not None
        assert report.violation.ops, "conviction must cite the ops"
        assert report.minimized is not None
        assert report.minimized.ops < case.ops
        assert report.confirmed, \
            "the minimized case must reproduce the violation"

    def test_minimized_case_replays_from_json(self):
        case = build_case(0, "dirtycache", service="kv", ops=30,
                          chaos=False)
        report = run_case(case)
        rebuilt = SimCase.from_json(report.minimized.to_json())
        assert run_case(rebuilt, minimize=False).verdict == "violation"

    def test_dirty_cache_fails_across_many_seeds(self):
        # One seed could be a fluke; the canary must trip repeatedly.
        violations = sum(
            run_case(build_case(seed, "dirtycache", service="kv", ops=30,
                                chaos=False),
                     minimize=False).verdict == "violation"
            for seed in range(12))
        assert violations >= 4


class TestShippedPoliciesAreClean:
    @pytest.mark.slow
    def test_battery_of_200_chaos_cases_is_clean(self):
        summary = run_battery(range(40), ops=24)
        assert summary["cases"] == 40 * len(SHIPPED_POLICIES)
        assert summary["violations"] == []
        assert summary["unknown"] == []
        for policy in SHIPPED_POLICIES:
            counts = summary["per_policy"][policy]
            assert counts["ok"] == counts["cases"] == 40

    def test_quick_battery_is_clean(self):
        # The fast in-every-run version of the gate above.
        summary = run_battery(range(8), ops=20)
        assert summary["violations"] == []
        assert summary["unknown"] == []


class TestFaultMenus:
    def test_every_shipped_policy_has_a_menu(self):
        # ``overload`` is an opt-in kind (not in FAULT_KINDS): only the
        # admission-aware deployments put it on their menus.
        known = set(FAULT_KINDS) | set(PRIMARY_FAULT_KINDS) | {"overload"}
        for policy in SHIPPED_POLICIES:
            assert policy in FAULT_MENUS
            assert set(FAULT_MENUS[policy]) <= known

    def test_stub_and_resilient_take_the_full_menu(self):
        assert FAULT_MENUS["stub"] == FAULT_KINDS
        assert FAULT_MENUS["resilient"] == FAULT_KINDS

    def test_replicated_quorum_mode_takes_the_full_menu(self):
        # R + W > N with read-side promotion and leader election: crash,
        # partition, and loss are all survivable — including the
        # primary-targeted variants, the tentpole contract of elect mode.
        assert FAULT_MENUS["replicated"] == \
            FAULT_KINDS + PRIMARY_FAULT_KINDS

    def test_composite_menu_is_the_intersection_of_its_layers(self):
        # The composite deployment stacks caching over *legacy write-all*
        # replication (quorum versioning is configuration opt-in), and the
        # write-all contract tolerates only latency — so the intersection
        # bottoms out there, not at the quorum-mode menu.
        legacy_write_all_menu = ("latency",)
        assert set(FAULT_MENUS["composite"]) == \
            set(FAULT_MENUS["caching"]) & set(legacy_write_all_menu)

    def test_dirtycache_shares_the_caching_contract(self):
        # Same menu as the honest caching policy: the conviction comes
        # from broken coherence, not from unfair faults.
        assert FAULT_MENUS["dirtycache"] == FAULT_MENUS["caching"]

    def test_underquorum_shares_the_replicated_contract(self):
        # The full basic menu, as for the honest quorum deployment: the
        # conviction comes from R + W <= N, not from unfair faults (the
        # primary-targeted kinds stay out — there is no election to stress
        # in the fixed-primary deployment).
        assert FAULT_MENUS["underquorum"] == FAULT_KINDS

    def test_splitbrain_menu_sticks_to_divergence_makers(self):
        # Partition and loss are what turn two same-term leaders into two
        # *diverged* logs; crash or latency would only slow the canary
        # down without exercising the election bug.
        assert FAULT_MENUS["splitbrain"] == ("partition", "loss")

    def test_admitted_takes_the_full_menu_plus_overload(self):
        # The admission stack must survive ordinary chaos *and* bursts;
        # its shedless canary runs overload-only schedules, so every
        # conviction is attributable to the missing queue bound.
        assert FAULT_MENUS["admitted"] == FAULT_KINDS + ("overload",)
        assert FAULT_MENUS["shedless"] == ("overload",)


class TestShedlessIsConvicted:
    def test_burst_collapse_is_found_minimized_and_confirmed(self):
        # Seed 2 draws a single 80-job burst (the pinned corpus record's
        # parent case): the unbounded queue turns it into seconds of
        # busy-line backlog and the collapse SLO convicts.
        case = build_case(2, "shedless", ops=30)
        assert any(f.kind == "overload" for f in case.faults)
        report = run_case(case)
        assert report.verdict == "violation"
        assert report.violation.partition == "overload-collapse"
        assert report.violation.ops, "conviction must cite the slow op"
        assert report.stats["max_op_latency"] > 1.0
        assert report.minimized is not None and report.confirmed

    def test_admitted_survives_the_same_burst(self):
        # The identical schedule against the bounded-queue stack: sheds
        # happen (clean ``fail``s), but no completion blows the SLO.
        case = build_case(2, "shedless", ops=30)
        shielded = SimCase(seed=case.seed, policy="admitted",
                           service=case.service, ops=case.ops,
                           clients=case.clients, faults=case.faults)
        report = run_case(shielded, minimize=False)
        assert report.verdict == "ok"
        assert report.stats["max_op_latency"] <= 1.0
