"""Tests for the bank workload: facades, the audit, and the model oracle."""

import pytest

from repro.simtest.bank import (
    ACCOUNTS,
    CAP,
    INITIAL,
    BANK_FACADES,
    SagaBank,
    SkipCompensationBank,
    TwoPhaseBank,
    grade_bank,
    store_index,
)
from repro.simtest.models import MODELS
from repro.simtest.runner import build_case, run_case
from repro.simtest.workload import deploy
from repro.transactions import VersionedKVStore


def make_facade(cls):
    """A facade over two local stores, accounts seeded."""
    stores = [VersionedKVStore(), VersionedKVStore()]
    for account in ACCOUNTS:
        stores[store_index(account)].write(account, INITIAL)
    return cls(stores)


class TestFacades:
    @pytest.mark.parametrize("cls", [TwoPhaseBank, SagaBank])
    def test_committed_transfer_moves_money(self, cls):
        facade = make_facade(cls)
        assert facade.transfer("a0", "b0", 3) == "committed"
        assert facade.balance("a0") == INITIAL - 3
        assert facade.balance("b0") == INITIAL + 3
        assert facade.total() == INITIAL * len(ACCOUNTS)

    @pytest.mark.parametrize("cls", [TwoPhaseBank, SagaBank])
    def test_insufficient_funds_refused_first(self, cls):
        facade = make_facade(cls)
        assert facade.transfer("a0", "b0", INITIAL + 1) == "insufficient"
        assert facade.total() == INITIAL * len(ACCOUNTS)

    @pytest.mark.parametrize("cls", [TwoPhaseBank, SagaBank])
    def test_cap_refuses_and_conserves(self, cls):
        facade = make_facade(cls)
        assert facade.transfer("a0", "b0", CAP - INITIAL) == "committed"
        assert facade.transfer("a1", "b0", 1) == "capped", \
            "b0 is at the cap now"
        assert facade.total() == INITIAL * len(ACCOUNTS)
        assert facade.balance("a1") == INITIAL, \
            "the saga's debit must be compensated on a capped credit"

    def test_facades_settle_cleanly_when_healthy(self):
        for name, cls in BANK_FACADES.items():
            facade = make_facade(cls)
            assert facade.settle() == 0, name
            assert facade.unresolved() == 0, name

    def test_skipping_compensation_leaks_money(self):
        facade = make_facade(SkipCompensationBank)
        assert facade.transfer("a0", "b0", CAP - INITIAL) == "committed"
        assert facade.transfer("a1", "b0", 1) == "capped"
        assert facade.total() < INITIAL * len(ACCOUNTS), \
            "the skipped compensation must lose the applied debit"


class TestBankModel:
    def test_model_matches_the_facade_step_for_step(self):
        model = MODELS["bank"]()
        facade = make_facade(TwoPhaseBank)
        state = model.initial()
        script = [("a0", "b0", 3), ("a0", "b1", 9), ("b0", "a1", 2),
                  ("a1", "b1", 4), ("b1", "a0", 1)]
        for src, dst, amount in script:
            expected, state = model.step(state, "transfer",
                                         (src, dst, amount))
            assert facade.transfer(src, dst, amount) == expected
        for account in ACCOUNTS:
            result, state = model.step(state, "balance", (account,))
            assert facade.balance(account) == result
        result, _ = model.step(state, "total", ())
        assert facade.total() == result

    def test_model_is_single_partition(self):
        model = MODELS["bank"]()
        assert model.partition_key("transfer", ("a0", "b0", 1)) is None
        assert model.partition_key("balance", ("a0",)) is None

    def test_unknown_verb_raises(self):
        model = MODELS["bank"]()
        with pytest.raises(ValueError):
            model.step(model.initial(), "rob", ())


class TestDeployment:
    def test_bank_policy_pins_the_bank_service(self):
        case = build_case(0, "saga")
        assert case.service == "bank"

    def test_mismatched_service_is_rejected(self):
        with pytest.raises(ValueError):
            deploy(build_case(0, "saga", service="kv", chaos=False))
        with pytest.raises(ValueError):
            deploy(build_case(0, "stub", service="bank", chaos=False))

    def test_deployed_bank_passes_the_audit(self):
        deployment = deploy(build_case(1, "saga", chaos=False))
        name, ctx, proxy = deployment.clients[0]
        assert proxy.invoke("transfer", ("a0", "b1", 2), {}) == "committed"
        assert proxy.invoke("total", (), {}) == INITIAL * len(ACCOUNTS)
        assert deployment.grade() is None

    def test_fault_free_cases_grade_the_policies_apart(self):
        for policy in ("txn2pc", "saga"):
            report = run_case(build_case(3, policy, chaos=False),
                              minimize=False)
            assert report.verdict == "ok", policy
        report = run_case(build_case(3, "sagaskip", chaos=False),
                          minimize=False)
        assert report.verdict == "violation", \
            "capped credits occur naturally, so the leak needs no faults"

    def test_grade_bank_convicts_a_leak(self):
        deployment = deploy(build_case(2, "sagaskip", chaos=False))
        name, ctx, proxy = deployment.clients[0]
        proxy.invoke("transfer", ("a0", "b0", CAP - INITIAL), {})
        assert proxy.invoke("transfer", ("a1", "b0", 1), {}) == "capped"
        violation = deployment.grade()
        assert violation is not None
        assert violation.partition == "bank-atomicity"
        assert grade_bank.__doc__ is not None
