"""CLI contract for ``python -m repro simtest``: exit codes and --json."""

import json
import pathlib

from repro.cli import main
from repro.simtest.workload import SHIPPED_POLICIES

CORPUS = pathlib.Path(__file__).parent / "regressions"


def test_clean_single_seed_exits_zero(capsys):
    code = main(["simtest", "--seed", "1", "--policy", "stub",
                 "--ops", "16"])
    out = capsys.readouterr().out
    assert code == 0
    assert "policy=stub" in out and "ok" in out


def test_dirty_cache_exits_one_with_minimized_repro(capsys):
    code = main(["simtest", "--seed", "0", "--policy", "dirtycache",
                 "--service", "kv", "--ops", "30"])
    out = capsys.readouterr().out
    assert code == 1
    assert "violation" in out
    assert "minimized" in out and "confirmed=True" in out


def test_json_output_is_byte_identical_across_runs(capsys):
    argv = ["simtest", "--seed", "2", "--policy", "caching",
            "--ops", "16", "--json", "--no-minimize"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second
    parsed = json.loads(first)
    assert parsed["verdict"] == "ok"
    assert parsed["case"]["policy"] == "caching"


def test_battery_mode_sweeps_all_policies(capsys):
    code = main(["simtest", "--seeds", "3", "--ops", "14", "--json"])
    summary = json.loads(capsys.readouterr().out)
    assert code == 0
    assert summary["cases"] == 3 * len(SHIPPED_POLICIES)
    assert summary["violations"] == [] and summary["unknown"] == []


def test_replay_honours_the_expectation(capsys):
    # A corpus file expecting "violation" replays with exit 0 — the
    # expectation is met — and a clean one likewise.
    for name in ("dirtycache-kv-seed0-minimized.json",
                 "stub-kv-seed5-full-menu.json"):
        code = main(["simtest", "--replay", str(CORPUS / name)])
        assert code == 0, capsys.readouterr().out
        capsys.readouterr()


def test_consistency_flag_changes_the_verdict(capsys):
    # The dirty cache breaks linearizability but does give each client its
    # own writes — the same case grades by the contract it is held to.
    argv = ["simtest", "--seed", "0", "--policy", "dirtycache",
            "--service", "kv", "--ops", "30"]
    assert main(argv) == 1
    capsys.readouterr()
    assert main(argv + ["--consistency", "read-your-writes"]) == 0
    assert "read-your-writes" in capsys.readouterr().out


def test_consistency_json_is_byte_identical_across_runs(capsys):
    argv = ["simtest", "--seed", "2", "--policy", "replicated",
            "--ops", "16", "--json", "--no-minimize",
            "--consistency", "sequential"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second
    assert json.loads(first)["consistency"] == "sequential"


def test_replay_honours_the_consistency_pin(capsys):
    # The corpus record pins read-your-writes; replayed without an explicit
    # --consistency it must grade under the pinned mode and meet "ok".
    code = main(["simtest", "--replay",
                 str(CORPUS / "dirtycache-kv-seed7-ryw.json")])
    assert code == 0, capsys.readouterr().out


def test_unknown_policy_exits_two(capsys):
    assert main(["simtest", "--policy", "nosuch"]) == 2
    assert "unknown policy" in capsys.readouterr().err
