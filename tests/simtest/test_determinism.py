"""Determinism gates: same case ⇒ byte-identical report, and no ambient
entropy or wall clock anywhere in ``src/``."""

import importlib.util
import pathlib

import pytest

from repro.simtest import build_case, run_case
from repro.simtest.runner import SimCase, report_json
from repro.simtest.workload import SHIPPED_POLICIES

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.mark.parametrize("policy", SHIPPED_POLICIES + ("dirtycache",))
def test_same_case_twice_is_byte_identical(policy):
    case = build_case(3, policy, ops=18, clients=3)
    first = run_case(case, minimize=False)
    second = run_case(case, minimize=False)
    assert report_json(first) == report_json(second)
    assert first.fingerprint == second.fingerprint
    assert first.streams == second.streams


def test_case_json_round_trip_preserves_the_run():
    case = build_case(5, "stub", ops=18)
    rebuilt = SimCase.from_json(case.to_json())
    assert rebuilt == case
    assert report_json(run_case(rebuilt, minimize=False)) == \
        report_json(run_case(case, minimize=False))


def test_different_seeds_diverge():
    # Sanity check that the fingerprint actually discriminates runs.
    a = run_case(build_case(1, "stub", service="kv", ops=18),
                 minimize=False)
    b = run_case(build_case(2, "stub", service="kv", ops=18),
                 minimize=False)
    assert a.fingerprint != b.fingerprint


def test_build_case_is_a_pure_function_of_its_arguments():
    a = build_case(11, "resilient", ops=24)
    b = build_case(11, "resilient", ops=24)
    assert a == b and a.faults == b.faults


def test_determinism_lint_is_clean_on_this_repo():
    spec = importlib.util.spec_from_file_location(
        "determinism_lint", REPO_ROOT / "tools" / "determinism_lint.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.lint(REPO_ROOT) == []


def test_determinism_lint_catches_a_plant(tmp_path):
    src = tmp_path / "src" / "pkg"
    src.mkdir(parents=True)
    (src / "bad.py").write_text(
        "import random, time\n"
        "def jitter():\n"
        "    return random.random() + time.time()\n"
        "def fine():\n"
        "    return random.Random(42).random()  # seeded: allowed\n",
        encoding="utf-8")
    spec = importlib.util.spec_from_file_location(
        "determinism_lint", REPO_ROOT / "tools" / "determinism_lint.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    problems = module.lint(tmp_path)
    assert len(problems) == 1 and "bad.py:3" in problems[0]
