"""Model-oracle tests: unit semantics plus cross-validation.

The cross-validation tests are the load-bearing ones: each model is driven
through a long random sequence *alongside the real service object*, and
every result must match.  A model that drifts from its service makes the
checker convict innocent policies (or worse, acquit guilty ones).
"""

import random

import pytest

from repro.apps.counter import Counter
from repro.apps.kv import KVStore
from repro.apps.locks import LockService
from repro.apps.queue import WorkQueue
from repro.iface.interface import Interface
from repro.simtest.history import Op, canonical
from repro.simtest.models import (
    MODELS,
    CombinedModel,
    CounterModel,
    KVModel,
    LockModel,
    QueueModel,
    ryw_projection,
)
from repro.simtest.workload import _OPGENS, SERVICE_CYCLE


class TestKVModel:
    def test_absent_key_reads_none(self):
        model = KVModel()
        state = model.initial()
        assert model.step(state, "get", ("k",))[0] is None
        assert model.step(state, "contains", ("k",))[0] is False
        assert model.step(state, "delete", ("k",))[0] is False

    def test_put_get_delete_cycle(self):
        model = KVModel()
        state = model.initial()
        result, state = model.step(state, "put", ("k", 7))
        assert result is True
        assert model.step(state, "get", ("k",))[0] == 7
        result, state = model.step(state, "delete", ("k",))
        assert result is True
        assert model.step(state, "get", ("k",))[0] is None

    def test_stored_none_is_distinct_from_absent(self):
        model = KVModel()
        _, state = model.step(model.initial(), "put", ("k", None))
        assert model.step(state, "contains", ("k",))[0] is True

    def test_list_values_stay_hashable(self):
        model = KVModel()
        _, state = model.step(model.initial(), "put", ("k", [1, 2]))
        hash(state)    # checker memoizes on state
        assert canonical(model.step(state, "get", ("k",))[0]) == [1, 2]

    def test_partitions_by_key(self):
        model = KVModel()
        assert model.partition_key("get", ("a",)) == "a"
        assert model.partition_key("put", ("b", 1)) == "b"

    def test_unknown_verb_raises(self):
        with pytest.raises(ValueError):
            KVModel().step(KVModel().initial(), "size", ())


class TestLockModel:
    def test_release_by_non_holder_is_the_exception_marker(self):
        model = LockModel()
        result, state = model.step(model.initial(), "release", ("l", "a"))
        assert result == "!PermissionError"
        assert state == model.initial()

    def test_fifo_handoff(self):
        model = LockModel()
        state = model.initial()
        _, state = model.step(state, "try_acquire", ("l", "a"))
        _, state = model.step(state, "enqueue", ("l", "b"))
        _, state = model.step(state, "enqueue", ("l", "c"))
        result, state = model.step(state, "release", ("l", "a"))
        assert result == "b"
        assert model.step(state, "holder", ("l",))[0] == "b"
        assert model.step(state, "queue_length", ("l",))[0] == 1

    def test_reentrant_acquire(self):
        model = LockModel()
        _, state = model.step(model.initial(), "try_acquire", ("l", "a"))
        assert model.step(state, "try_acquire", ("l", "a"))[0] is True
        assert model.step(state, "try_acquire", ("l", "b"))[0] is False


class TestQueueModel:
    def test_submit_take_ack(self):
        model = QueueModel()
        state = model.initial()
        task_id, state = model.step(state, "submit", ("job",))
        assert task_id == 1
        result, state = model.step(state, "take", ("w",))
        assert result == [1, "job"]
        assert model.step(state, "ack", (1,))[0] is True
        assert model.step(state, "ack", (1,))[1][2] == (1,)

    def test_take_empty_and_stale_ack(self):
        model = QueueModel()
        state = model.initial()
        assert model.step(state, "take", ("w",))[0] is None
        assert model.step(state, "ack", (9,))[0] is False


class TestCounterModel:
    def test_arithmetic(self):
        model = CounterModel()
        state = model.initial()
        result, state = model.step(state, "incr", (3,))
        assert result == 3
        result, state = model.step(state, "decr", (1,))
        assert result == 2
        result, state = model.step(state, "reset", ())
        assert (result, state) == (2, 0)


def _op(index, client, verb, args, status="ok", result=None):
    return Op(index=index, client=client, verb=verb, args=list(args),
              invoke=float(index), complete=float(index) + 0.5,
              status=status, result=result, error="")


class TestCombinedModel:
    def test_folds_every_partition_into_one_state(self):
        model = CombinedModel(KVModel())
        state = model.initial()
        assert state == ()
        result, state = model.step(state, "put", ("a", 1))
        assert result is True
        result, state = model.step(state, "put", ("b", 2))
        assert model.step(state, "get", ("a",))[0] == 1
        assert model.step(state, "get", ("b",))[0] == 2

    def test_state_is_hashable_and_order_independent(self):
        model = CombinedModel(KVModel())
        _, one = model.step(model.initial(), "put", ("a", 1))
        _, one = model.step(one, "put", ("b", 2))
        _, two = model.step(model.initial(), "put", ("b", 2))
        _, two = model.step(two, "put", ("a", 1))
        hash(one)    # checker memoizes on state
        assert one == two, "equal tables must memoize equally"

    def test_single_combined_partition(self):
        model = CombinedModel(KVModel())
        assert model.partition_key("get", ("a",)) is None
        assert model.partition_key("put", ("b", 1)) is None

    def test_inherits_readonly_verbs(self):
        assert CombinedModel(KVModel()).readonly_verbs == \
            KVModel.readonly_verbs


class TestRywProjection:
    def test_own_ops_survive_verbatim(self):
        mine = _op(0, "a", "put", ("k", 1), result=True)
        projected = ryw_projection([mine], "a", KVModel())
        assert projected == [mine]

    def test_other_clients_mutators_become_optional(self):
        theirs = _op(0, "b", "put", ("k", 2), result=True)
        projected = ryw_projection([theirs], "a", KVModel())
        assert len(projected) == 1
        assert projected[0].status == "maybe"
        assert projected[0].complete is None
        assert projected[0].result is None

    def test_other_clients_reads_are_dropped(self):
        theirs = _op(0, "b", "get", ("k",), result=1)
        assert ryw_projection([theirs], "a", KVModel()) == []

    def test_projection_preserves_history_order(self):
        ops = [
            _op(0, "a", "put", ("k", 1), result=True),
            _op(1, "b", "get", ("k",), result=1),
            _op(2, "b", "put", ("k", 2), result=True),
            _op(3, "a", "get", ("k",), result=1),
        ]
        projected = ryw_projection(ops, "a", KVModel())
        assert [op.index for op in projected] == [0, 2, 3]


_SERVICES = {"kv": KVStore, "counter": Counter, "lock": LockService,
             "queue": WorkQueue}


@pytest.mark.parametrize("service", SERVICE_CYCLE)
def test_readonly_verbs_mirror_the_interface(service):
    """The RYW oracle drops other clients' reads by ``readonly_verbs``;
    a verb misclassified there silently weakens (or breaks) the check, so
    pin the set against the service interface's own ``readonly`` flags."""
    model = MODELS[service]()
    iface = Interface.of(_SERVICES[service])
    for verb in model.readonly_verbs:
        assert iface.operation(verb).readonly, verb
    opgen = _OPGENS[service]
    rng = random.Random(f"readonly-xval:{service}")
    exercised = {opgen(rng, "c0", index)[0] for index in range(200)}
    for verb in exercised:
        assert (verb in model.readonly_verbs) == \
            iface.operation(verb).readonly, verb


@pytest.mark.parametrize("service", SERVICE_CYCLE)
def test_model_matches_service_sequentially(service):
    """Drive model and real service through 400 random ops in lockstep.

    Uses the workload's own op generators, so the verbs and argument
    distributions are exactly what the harness exercises.  The model keeps
    per-partition state the way the checker does.
    """
    model = MODELS[service]()
    real = _SERVICES[service]()
    opgen = _OPGENS[service]
    rng = random.Random(f"model-xval:{service}")
    states: dict = {}
    for index in range(400):
        client = f"c{index % 3}"
        verb, args = opgen(rng, client, index)
        key = model.partition_key(verb, args)
        state = states.get(key, model.initial())
        expected, states[key] = model.step(state, verb, args)
        try:
            actual = canonical(getattr(real, verb)(*args))
        except Exception as exc:
            actual = f"!{type(exc).__name__}"
        assert canonical(expected) == actual, \
            f"{service} op {index}: {verb}{args} model={expected!r} " \
            f"service={actual!r}"
