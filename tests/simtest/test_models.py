"""Model-oracle tests: unit semantics plus cross-validation.

The cross-validation tests are the load-bearing ones: each model is driven
through a long random sequence *alongside the real service object*, and
every result must match.  A model that drifts from its service makes the
checker convict innocent policies (or worse, acquit guilty ones).
"""

import random

import pytest

from repro.apps.counter import Counter
from repro.apps.kv import KVStore
from repro.apps.locks import LockService
from repro.apps.queue import WorkQueue
from repro.simtest.history import canonical
from repro.simtest.models import (
    MODELS,
    CounterModel,
    KVModel,
    LockModel,
    QueueModel,
)
from repro.simtest.workload import _OPGENS, SERVICE_CYCLE


class TestKVModel:
    def test_absent_key_reads_none(self):
        model = KVModel()
        state = model.initial()
        assert model.step(state, "get", ("k",))[0] is None
        assert model.step(state, "contains", ("k",))[0] is False
        assert model.step(state, "delete", ("k",))[0] is False

    def test_put_get_delete_cycle(self):
        model = KVModel()
        state = model.initial()
        result, state = model.step(state, "put", ("k", 7))
        assert result is True
        assert model.step(state, "get", ("k",))[0] == 7
        result, state = model.step(state, "delete", ("k",))
        assert result is True
        assert model.step(state, "get", ("k",))[0] is None

    def test_stored_none_is_distinct_from_absent(self):
        model = KVModel()
        _, state = model.step(model.initial(), "put", ("k", None))
        assert model.step(state, "contains", ("k",))[0] is True

    def test_list_values_stay_hashable(self):
        model = KVModel()
        _, state = model.step(model.initial(), "put", ("k", [1, 2]))
        hash(state)    # checker memoizes on state
        assert canonical(model.step(state, "get", ("k",))[0]) == [1, 2]

    def test_partitions_by_key(self):
        model = KVModel()
        assert model.partition_key("get", ("a",)) == "a"
        assert model.partition_key("put", ("b", 1)) == "b"

    def test_unknown_verb_raises(self):
        with pytest.raises(ValueError):
            KVModel().step(KVModel().initial(), "size", ())


class TestLockModel:
    def test_release_by_non_holder_is_the_exception_marker(self):
        model = LockModel()
        result, state = model.step(model.initial(), "release", ("l", "a"))
        assert result == "!PermissionError"
        assert state == model.initial()

    def test_fifo_handoff(self):
        model = LockModel()
        state = model.initial()
        _, state = model.step(state, "try_acquire", ("l", "a"))
        _, state = model.step(state, "enqueue", ("l", "b"))
        _, state = model.step(state, "enqueue", ("l", "c"))
        result, state = model.step(state, "release", ("l", "a"))
        assert result == "b"
        assert model.step(state, "holder", ("l",))[0] == "b"
        assert model.step(state, "queue_length", ("l",))[0] == 1

    def test_reentrant_acquire(self):
        model = LockModel()
        _, state = model.step(model.initial(), "try_acquire", ("l", "a"))
        assert model.step(state, "try_acquire", ("l", "a"))[0] is True
        assert model.step(state, "try_acquire", ("l", "b"))[0] is False


class TestQueueModel:
    def test_submit_take_ack(self):
        model = QueueModel()
        state = model.initial()
        task_id, state = model.step(state, "submit", ("job",))
        assert task_id == 1
        result, state = model.step(state, "take", ("w",))
        assert result == [1, "job"]
        assert model.step(state, "ack", (1,))[0] is True
        assert model.step(state, "ack", (1,))[1][2] == (1,)

    def test_take_empty_and_stale_ack(self):
        model = QueueModel()
        state = model.initial()
        assert model.step(state, "take", ("w",))[0] is None
        assert model.step(state, "ack", (9,))[0] is False


class TestCounterModel:
    def test_arithmetic(self):
        model = CounterModel()
        state = model.initial()
        result, state = model.step(state, "incr", (3,))
        assert result == 3
        result, state = model.step(state, "decr", (1,))
        assert result == 2
        result, state = model.step(state, "reset", ())
        assert (result, state) == (2, 0)


_SERVICES = {"kv": KVStore, "counter": Counter, "lock": LockService,
             "queue": WorkQueue}


@pytest.mark.parametrize("service", SERVICE_CYCLE)
def test_model_matches_service_sequentially(service):
    """Drive model and real service through 400 random ops in lockstep.

    Uses the workload's own op generators, so the verbs and argument
    distributions are exactly what the harness exercises.  The model keeps
    per-partition state the way the checker does.
    """
    model = MODELS[service]()
    real = _SERVICES[service]()
    opgen = _OPGENS[service]
    rng = random.Random(f"model-xval:{service}")
    states: dict = {}
    for index in range(400):
        client = f"c{index % 3}"
        verb, args = opgen(rng, client, index)
        key = model.partition_key(verb, args)
        state = states.get(key, model.initial())
        expected, states[key] = model.step(state, verb, args)
        try:
            actual = canonical(getattr(real, verb)(*args))
        except Exception as exc:
            actual = f"!{type(exc).__name__}"
        assert canonical(expected) == actual, \
            f"{service} op {index}: {verb}{args} model={expected!r} " \
            f"service={actual!r}"
