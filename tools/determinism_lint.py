#!/usr/bin/env python3
"""Determinism lint: no ambient entropy or wall clock in the library.

The whole simulation rests on two invariants: every random draw flows from
:class:`repro.kernel.randomness.SeedSequence`, and every timestamp flows
from :class:`repro.kernel.clock.Clock`.  One stray ``random.random()`` or
``time.time()`` silently breaks seed replay — the worst kind of breakage,
because everything still *works*, just not twice in a row.

This lint greps ``src/`` for module-level entropy draws (``random.choice``
etc. — explicitly-seeded ``random.Random(seed)`` instances are fine) and
wall-clock reads (``time.time``, ``datetime.now``, ...), excluding the two
kernel modules that legitimately wrap them.

Usage::

    python tools/determinism_lint.py [root]

Exits 1 and lists ``file:line: offending call`` on any hit.
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Files allowed to touch the primitives they encapsulate.
ALLOWED = {
    "src/repro/kernel/randomness.py",   # wraps random.Random seeding
    "src/repro/kernel/clock.py",        # the virtual clock itself
    "src/repro/bench/timing.py",        # sanctioned wall clock for benches
}

#: Module-level entropy draws (process-global RNG state — unseedable per run).
ENTROPY = re.compile(
    r"\brandom\.(random|randrange|randint|choice|choices|shuffle|sample"
    r"|uniform|triangular|gauss|normalvariate|expovariate|betavariate"
    r"|vonmisesvariate|paretovariate|weibullvariate|lognormvariate"
    r"|getrandbits|randbytes|seed)\s*\(")

#: Wall-clock reads (real time leaking into virtual time).
WALLCLOCK = re.compile(
    r"\btime\.(time|time_ns|monotonic|monotonic_ns|perf_counter"
    r"|perf_counter_ns|process_time)\s*\("
    r"|\bdatetime\.(now|utcnow|today)\s*\("
    r"|\bdate\.today\s*\(")


def lint(root: pathlib.Path) -> list[str]:
    """All violations under ``root/src``, as ``path:line: text`` strings."""
    problems: list[str] = []
    for path in sorted((root / "src").rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel in ALLOWED:
            continue
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            code = line.split("#", 1)[0]
            if ENTROPY.search(code) or WALLCLOCK.search(code):
                problems.append(f"{rel}:{lineno}: {line.strip()}")
    return problems


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path(".")
    problems = lint(root)
    if problems:
        print("determinism lint: ambient entropy / wall clock in src/:")
        for problem in problems:
            print(f"  {problem}")
        print(f"{len(problems)} violation(s). Route randomness through "
              "SeedSequence streams and time through the virtual Clock.")
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
