#!/usr/bin/env python3
"""Perf gate: fail CI when the invocation fast path regresses.

Compares a fresh ``python -m repro bench e18 --json`` record against the
committed baseline (``BENCH_e18.json``).  Two kinds of checks:

* **Deterministic fields** — per-policy virtual µs/op, message counts, and
  trace fingerprints are machine-independent: same seed ⇒ same trace.  Any
  difference from the baseline is a hard failure regardless of tolerance,
  because it means behaviour (not just speed) changed.
* **Throughput** — raw ops/sec is meaningless across machines, so the gate
  compares ``norm_ops`` (ops/sec divided by the host calibration rate; see
  ``repro.bench.timing``).  A policy may be up to ``--tolerance`` slower
  than baseline before the gate trips; faster is always fine.

Usage::

    python -m repro bench e18 --json > /tmp/bench.json
    python tools/perf_gate.py --baseline BENCH_e18.json \
        --current /tmp/bench.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import sys

#: Per-policy fields that must match the baseline byte for byte.
DETERMINISTIC_FIELDS = ("sim_us_per_op", "messages", "fingerprint")


def _index(record: dict) -> dict[str, dict]:
    """Policy name → row, with a sanity check on the record shape."""
    if record.get("experiment") != "e18":
        raise SystemExit(f"not an e18 bench record: "
                         f"{record.get('experiment')!r}")
    return {row["policy"]: row for row in record["policies"]}


def compare(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """All gate violations, as human-readable strings (empty = pass)."""
    problems: list[str] = []
    for field in ("ops", "seed"):
        if baseline.get(field) != current.get(field):
            problems.append(
                f"workload mismatch: {field} {baseline.get(field)!r} "
                f"(baseline) vs {current.get(field)!r} (current)")
    base_rows, cur_rows = _index(baseline), _index(current)
    missing = sorted(set(base_rows) - set(cur_rows))
    if missing:
        problems.append(f"policies missing from current run: {missing}")
    for policy, base in sorted(base_rows.items()):
        cur = cur_rows.get(policy)
        if cur is None:
            continue
        for field in DETERMINISTIC_FIELDS:
            if base[field] != cur[field]:
                problems.append(
                    f"{policy}: deterministic field {field!r} changed: "
                    f"{base[field]!r} -> {cur[field]!r}")
        floor = base["norm_ops"] * (1.0 - tolerance)
        if cur["norm_ops"] < floor:
            drop = 1.0 - cur["norm_ops"] / base["norm_ops"]
            problems.append(
                f"{policy}: norm_ops {cur['norm_ops']:.1f} is {drop:.0%} "
                f"below baseline {base['norm_ops']:.1f} "
                f"(tolerance {tolerance:.0%})")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_e18.json")
    parser.add_argument("--current", required=True,
                        help="fresh bench record to check")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max allowed fractional norm_ops drop "
                             "(default 0.25)")
    args = parser.parse_args(argv)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    problems = compare(baseline, current, args.tolerance)
    if problems:
        print("perf gate: FAIL")
        for problem in problems:
            print(f"  {problem}")
        return 1
    for policy, base in sorted(_index(baseline).items()):
        cur = _index(current)[policy]
        delta = cur["norm_ops"] / base["norm_ops"] - 1.0
        print(f"  {policy:>12}: norm_ops {cur['norm_ops']:.1f} "
              f"({delta:+.0%} vs baseline)")
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
