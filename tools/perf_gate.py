#!/usr/bin/env python3
"""Perf gate: fail CI when a gated benchmark regresses.

Compares fresh ``python -m repro bench <id> --json`` records against the
committed baselines (``BENCH_e18.json``, ``BENCH_e19.json``,
``BENCH_e20.json``, ``BENCH_e21.json``).  Each experiment declares its
own comparison
contract in ``EXPERIMENTS``:

* **e18** (wall-clock fast path) — per-policy virtual µs/op, message
  counts, and trace fingerprints are machine-independent: same seed ⇒
  same trace.  Any difference is a hard failure regardless of tolerance,
  because it means behaviour (not just speed) changed.  Raw ops/sec is
  meaningless across machines, so throughput is compared via ``norm_ops``
  (ops/sec divided by the host calibration rate; see
  ``repro.bench.timing``), with a per-pair tolerance band.
* **e19** (virtual-time shard scaling) and **e20** (virtual-time overload
  goodput) — carry no wall numbers at all, so *every* scenario field must
  match the baseline exactly; the tolerance does not apply.

A named baseline or current file that cannot be read is a loud failure
(exit 2), never a silent skip: a gate that "passes" because its baseline
went missing is worse than no gate.

Usage::

    python -m repro bench e18 --json > /tmp/e18.json
    python -m repro bench e19 --json > /tmp/e19.json
    python tools/perf_gate.py \
        --pair BENCH_e18.json:/tmp/e18.json:0.25 \
        --pair BENCH_e19.json:/tmp/e19.json

The single-pair spelling ``--baseline BENCH_e18.json --current
/tmp/e18.json --tolerance 0.25`` is still accepted.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Per-experiment comparison contracts.  ``rows``/``key`` locate the row
#: list and its identity field; ``deterministic`` fields must match the
#: baseline byte for byte; ``throughput`` (optional) is the single
#: machine-dependent field allowed to drop by at most the tolerance.
EXPERIMENTS = {
    "e10": {
        "rows": "scenarios",
        "key": "scenario",
        # Mixed rows: wire-* rows carry nbytes/lossless, e2e-* rows carry
        # the virtual-time fields.  Absent fields compare as None on both
        # sides, so one tuple covers both shapes.
        "deterministic": ("size", "nbytes", "lossless", "sim_mean_ms",
                          "bytes_per_op"),
        "throughput": "norm_fast",
    },
    "e18": {
        "rows": "policies",
        "key": "policy",
        "deterministic": ("sim_us_per_op", "messages", "fingerprint"),
        "throughput": "norm_ops",
    },
    "e19": {
        "rows": "scenarios",
        "key": "scenario",
        # Virtual-time record: every field is deterministic.  ``None``
        # means "all of them", so new row fields are gated automatically.
        "deterministic": None,
        "throughput": None,
    },
    "e20": {
        "rows": "scenarios",
        "key": "scenario",
        # Same discipline as e19: pure virtual-time goodput/latency rows,
        # compared exactly with no tolerance band.
        "deterministic": None,
        "throughput": None,
    },
    "e21": {
        "rows": "scenarios",
        "key": "scenario",
        # Same discipline as e19/e20: pure virtual-time region latency
        # and staleness-probe rows, compared exactly.
        "deterministic": None,
        "throughput": None,
    },
    "simwall": {
        "rows": "scenarios",
        "key": "scenario",
        # The digest pins the whole battery summary byte-for-byte; the
        # normalised case rate is the calibrated wall-time budget.
        "deterministic": ("cases", "ok", "digest"),
        "throughput": "norm_rate",
    },
}


def _load(path: str) -> dict:
    """Read a bench record, failing loudly if the file is unusable.

    A missing baseline must kill the gate, not soften it: exit 2 so CI
    distinguishes "broken gate setup" from "perf regression" (exit 1).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        print(f"perf gate: cannot read {path!r}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    except ValueError as exc:
        print(f"perf gate: {path!r} is not valid JSON: {exc}",
              file=sys.stderr)
        raise SystemExit(2)


def _spec(record: dict, path: str) -> dict:
    """The comparison contract for a record, from its experiment id."""
    experiment = record.get("experiment")
    spec = EXPERIMENTS.get(experiment)
    if spec is None:
        print(f"perf gate: {path!r} is not a gated bench record "
              f"(experiment={experiment!r}; known: {sorted(EXPERIMENTS)})",
              file=sys.stderr)
        raise SystemExit(2)
    return spec


def _index(record: dict, spec: dict) -> dict[str, dict]:
    """Row identity → row, per the experiment's contract."""
    return {row[spec["key"]]: row for row in record[spec["rows"]]}


def compare(baseline: dict, current: dict, tolerance: float,
            spec: dict) -> list[str]:
    """All gate violations, as human-readable strings (empty = pass)."""
    problems: list[str] = []
    for field in ("experiment", "ops", "seed"):
        if baseline.get(field) != current.get(field):
            problems.append(
                f"workload mismatch: {field} {baseline.get(field)!r} "
                f"(baseline) vs {current.get(field)!r} (current)")
    if problems:
        return problems
    base_rows, cur_rows = _index(baseline, spec), _index(current, spec)
    missing = sorted(set(base_rows) - set(cur_rows))
    if missing:
        problems.append(f"rows missing from current run: {missing}")
    for name, base in sorted(base_rows.items()):
        cur = cur_rows.get(name)
        if cur is None:
            continue
        fields = spec["deterministic"]
        if fields is None:
            fields = sorted(base)
        for field in fields:
            if base.get(field) != cur.get(field):
                problems.append(
                    f"{name}: deterministic field {field!r} changed: "
                    f"{base.get(field)!r} -> {cur.get(field)!r}")
        throughput = spec["throughput"]
        if throughput is not None:
            floor = base[throughput] * (1.0 - tolerance)
            if cur[throughput] < floor:
                drop = 1.0 - cur[throughput] / base[throughput]
                problems.append(
                    f"{name}: {throughput} {cur[throughput]:.1f} is "
                    f"{drop:.0%} below baseline {base[throughput]:.1f} "
                    f"(tolerance {tolerance:.0%})")
    return problems


def check_pair(baseline_path: str, current_path: str,
               tolerance: float) -> list[str]:
    """Gate one baseline/current pair; prints the per-row summary."""
    baseline = _load(baseline_path)
    current = _load(current_path)
    spec = _spec(baseline, baseline_path)
    problems = compare(baseline, current, tolerance, spec)
    experiment = baseline["experiment"]
    if problems:
        print(f"{experiment} ({baseline_path}): FAIL")
        for problem in problems:
            print(f"  {problem}")
        return problems
    cur_rows = _index(current, spec)
    for name, base in sorted(_index(baseline, spec).items()):
        throughput = spec["throughput"]
        if throughput is not None:
            cur = cur_rows[name]
            delta = cur[throughput] / base[throughput] - 1.0
            print(f"  {name:>12}: {throughput} {cur[throughput]:.1f} "
                  f"({delta:+.0%} vs baseline)")
        else:
            print(f"  {name:>12}: exact match")
    print(f"{experiment} ({baseline_path}): ok")
    return []


def _parse_pair(text: str, default_tolerance: float) -> tuple[str, str, float]:
    """``BASELINE:CURRENT[:TOLERANCE]`` → (baseline, current, tolerance)."""
    parts = text.split(":")
    if len(parts) == 2:
        return parts[0], parts[1], default_tolerance
    if len(parts) == 3:
        try:
            return parts[0], parts[1], float(parts[2])
        except ValueError:
            pass
    raise SystemExit(
        f"perf gate: bad --pair {text!r} "
        f"(expected BASELINE:CURRENT[:TOLERANCE])")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pair", action="append", default=[],
                        metavar="BASELINE:CURRENT[:TOLERANCE]",
                        help="a baseline/current file pair to gate; "
                             "repeatable, one per experiment")
    parser.add_argument("--baseline", default=None,
                        help="committed baseline (single-pair form)")
    parser.add_argument("--current", default=None,
                        help="fresh bench record (single-pair form)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="default max fractional throughput drop for "
                             "pairs without their own (default 0.25)")
    args = parser.parse_args(argv)
    pairs = [_parse_pair(text, args.tolerance) for text in args.pair]
    if args.baseline or args.current:
        if not (args.baseline and args.current):
            raise SystemExit(
                "perf gate: --baseline and --current go together")
        pairs.append((args.baseline, args.current, args.tolerance))
    if not pairs:
        raise SystemExit("perf gate: nothing to gate "
                         "(give --pair or --baseline/--current)")
    failed = False
    for baseline_path, current_path, tolerance in pairs:
        if check_pair(baseline_path, current_path, tolerance):
            failed = True
    print("perf gate: FAIL" if failed else "perf gate: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
